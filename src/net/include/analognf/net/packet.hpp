// Byte-accurate packet representation and header construction.
//
// The architecture of Fig. 5 starts with a parser that extracts header
// fields from ingress packets and forwards them to the digital (TCAM) and
// analog (pCAM) match-action units. To exercise that path honestly we
// build real packets: Ethernet II / IPv4 / {TCP, UDP} with network byte
// order and a correct IPv4 header checksum, not structs pretending to be
// wire format.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace analognf::net {

using MacAddress = std::array<std::uint8_t, 6>;

// EtherType values used by the pipeline.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;  // 802.1Q TPID
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86DD;

// IPv4 protocol numbers used by the pipeline.
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

// Parsed/constructed header views (host byte order).
struct EthernetHeader {
  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ether_type = kEtherTypeIpv4;

  static constexpr std::size_t kSize = 14;
};

// 802.1Q VLAN tag (inserted between the MACs and the EtherType).
struct VlanTag {
  std::uint8_t pcp = 0;       // 3-bit priority code point
  bool dei = false;           // drop eligible indicator
  std::uint16_t vlan_id = 1;  // 12-bit VID

  static constexpr std::size_t kSize = 4;
};

struct Ipv4Header {
  std::uint8_t dscp = 0;        // 6-bit DSCP (priority marking for AQM)
  std::uint8_t ecn = 0;         // 2-bit ECN field
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint16_t checksum = 0;   // filled in by serialisation
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;

  static constexpr std::size_t kSize = 20;  // no options
};

// IPv6 fixed header (host byte order; no extension headers modelled).
struct Ipv6Header {
  std::uint8_t traffic_class = 0;   // DSCP+ECN byte
  std::uint32_t flow_label = 0;     // 20 bits
  std::uint16_t payload_length = 0; // filled in by serialisation
  std::uint8_t next_header = kIpProtoUdp;
  std::uint8_t hop_limit = 64;
  std::array<std::uint8_t, 16> src{};
  std::array<std::uint8_t, 16> dst{};

  static constexpr std::size_t kSize = 40;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;       // CWR..FIN bit field
  std::uint16_t window = 65535;

  static constexpr std::size_t kSize = 20;  // no options
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;     // header + payload
  std::uint16_t checksum = 0;   // optional in IPv4; we emit 0

  static constexpr std::size_t kSize = 8;
};

// A packet is its bytes. Metadata the switch attaches in flight
// (timestamps, queue ids) lives in arch/sim, not here.
class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t>& bytes() { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Builds valid packets layer by layer. Usage:
//   Packet p = PacketBuilder()
//       .Ethernet(eth).Ipv4(ip).Udp(udp).Payload(400).Build();
// Build() back-patches IPv4 total_length/checksum and UDP length.
class PacketBuilder {
 public:
  PacketBuilder& Ethernet(const EthernetHeader& eth);
  // Inserts an 802.1Q tag. vlan_id must fit in 12 bits, pcp in 3.
  PacketBuilder& Vlan(const VlanTag& tag);
  PacketBuilder& Ipv4(const Ipv4Header& ip);
  PacketBuilder& Ipv6(const Ipv6Header& ip);
  PacketBuilder& Tcp(const TcpHeader& tcp);
  PacketBuilder& Udp(const UdpHeader& udp);
  // Appends `size` bytes of deterministic payload.
  PacketBuilder& Payload(std::size_t size, std::uint8_t fill = 0xab);

  // Serialises. Throws std::logic_error if layering is inconsistent
  // (e.g. TCP without IPv4, IPv4 without Ethernet).
  Packet Build() const;

 private:
  bool has_eth_ = false;
  bool has_vlan_ = false;
  bool has_ip_ = false;
  bool has_ip6_ = false;
  bool has_tcp_ = false;
  bool has_udp_ = false;
  EthernetHeader eth_{};
  VlanTag vlan_{};
  Ipv4Header ip_{};
  Ipv6Header ip6_{};
  TcpHeader tcp_{};
  UdpHeader udp_{};
  std::size_t payload_size_ = 0;
  std::uint8_t payload_fill_ = 0xab;
};

// RFC 1071 Internet checksum over `data` (used for the IPv4 header).
std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len);

// Dotted-quad helpers for examples and logs.
std::uint32_t ParseIpv4(const std::string& dotted);  // throws on bad input
std::string FormatIpv4(std::uint32_t ip);

}  // namespace analognf::net
