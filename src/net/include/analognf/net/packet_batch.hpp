// First-class ingress batch: the structure-of-arrays unit of work the
// match-action stage graph operates on.
//
// The Fig. 5 pipeline is composable — parser, digital MATs, analog MATs,
// cognitive traffic manager — and every stage is batch-oriented: it reads
// and writes whole per-packet *lanes* rather than one packet at a time.
// A PacketBatch is a non-owning view over the ingress packets plus those
// lanes (parse results, verdicts, route/class tags, per-flow hashes).
// Stages communicate exclusively through lanes, which is what makes the
// stages interchangeable slots: a stage only depends on the lanes it
// reads, never on which stage produced them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analognf/net/packet.hpp"
#include "analognf/net/parser.hpp"

namespace analognf::net {

// Final disposition of an injected packet. Settled progressively: a
// packet starts kForwarded and any stage may settle a terminal verdict;
// later stages skip packets whose verdict is no longer kForwarded.
enum class Verdict : std::uint8_t {
  kForwarded,     // enqueued on an egress port
  kParseError,
  kFirewallDeny,
  kNoRoute,
  kAqmDrop,       // analog AQM admission drop
  kQueueFull,     // egress tail drop
};

std::string ToString(Verdict verdict);

// Structure-of-arrays batch state. All lanes are sized to size() by
// Reset(); the vectors are reused across batches and never shrink.
class PacketBatch {
 public:
  // route_port lane value for "no egress port selected".
  static constexpr std::uint32_t kNoPort = 0xffffffffu;
  // traffic_class lane value for "not classified".
  static constexpr std::uint32_t kNoClass = 0xffffffffu;

  PacketBatch() = default;

  // Rebinds the batch to `count` packets arriving at `now_s` and resets
  // every lane to its pre-pipeline default. The packet storage is NOT
  // copied; the caller keeps it alive for the batch's lifetime.
  void Reset(const Packet* packets, std::size_t count, double now_s);

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  double now_s() const { return now_s_; }
  const Packet& packet(std::size_t i) const { return packets_[i]; }
  const Packet* packets_data() const { return packets_; }

  // ------------------------------------------------------------- lanes
  // Parse results, one per packet (filled by the parse stage).
  std::vector<ParsedPacket> parsed;
  // Arrival timestamp lane (today: every entry equals now_s()).
  std::vector<double> arrival_s;
  // Progressive verdicts; kForwarded means "still in flight".
  std::vector<Verdict> verdicts;
  // 1 if the firewall TCAM searched this packet (energy is charged per
  // search, hit or miss, so the commit stage needs the exact set).
  std::vector<std::uint8_t> searched_firewall;
  // 1 if the LPM engine looked this packet up.
  std::vector<std::uint8_t> searched_route;
  // Selected egress port (kNoPort until a routing stage decides).
  std::vector<std::uint32_t> route_port;
  // Stable per-flow hash (FNV-1a over the 5-tuple; 0 if unparsed).
  std::vector<std::uint64_t> flow_hash;
  // 3-bit priority derived from the DSCP class-selector bits.
  std::vector<std::uint8_t> priority;
  // Egress service class, filled by the traffic manager at commit.
  std::vector<std::uint32_t> service_class;
  // Analog traffic-analysis tag (kNoClass until a classifier stage runs).
  std::vector<std::uint32_t> traffic_class;

  // Energy of one search cycle against the table snapshot the firewall /
  // route stage actually searched for this batch, set by those stages.
  // The traffic manager charges the canonical ledger from these instead
  // of re-reading the (possibly concurrently mutated) live tables, so
  // ledger totals follow the snapshot the packets really saw.
  double firewall_search_j = 0.0;
  double route_search_j = 0.0;

  // One deferred canonical-ledger commit: `energy_j` joules of analog
  // (pCAM) search energy spent on packet `packet` by a stage that runs
  // before the traffic manager.
  struct AnalogCommit {
    std::uint32_t packet = 0;
    double energy_j = 0.0;
  };
  // Deferred analog energy, appended by pre-commit analog stages (load
  // balancer, classifier, custom stages) in processing order. The
  // traffic manager replays these per packet, in append order, into the
  // canonical ledger — that keeps ledger totals bit-identical between
  // batched and one-packet-at-a-time execution even though the analog
  // stages fan out over the batch (floating-point accumulation order is
  // part of the determinism contract).
  std::vector<AnalogCommit> analog_commits;

  // Running min/max/sum over a stream of analog match probabilities
  // (pCAM match degrees, classifier confidences, AQM drop probabilities)
  // observed while this batch flowed through the pipeline. Telemetry
  // only: folded into the flight-recorder trace record, never read by
  // any stage.
  struct DegreeSummary {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;

    void Fold(double degree) {
      if (count == 0) {
        min = max = sum = degree;
      } else {
        if (degree < min) min = degree;
        if (degree > max) max = degree;
        sum += degree;
      }
      ++count;
    }
    void Clear() { count = 0; min = max = sum = 0.0; }
  };
  DegreeSummary pcam_degrees;

 private:
  const Packet* packets_ = nullptr;
  std::size_t count_ = 0;
  double now_s_ = 0.0;
};

}  // namespace analognf::net
