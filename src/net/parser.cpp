#include "analognf/net/parser.hpp"

namespace analognf::net {
namespace {

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

std::string ToString(ParseError error) {
  switch (error) {
    case ParseError::kNone:
      return "ok";
    case ParseError::kTruncatedEthernet:
      return "truncated-ethernet";
    case ParseError::kUnsupportedEtherType:
      return "unsupported-ethertype";
    case ParseError::kTruncatedIpv4:
      return "truncated-ipv4";
    case ParseError::kBadIpVersion:
      return "bad-ip-version";
    case ParseError::kBadIpHeaderLength:
      return "bad-ip-header-length";
    case ParseError::kBadIpChecksum:
      return "bad-ip-checksum";
    case ParseError::kTruncatedL4:
      return "truncated-l4";
    case ParseError::kTruncatedIpv6:
      return "truncated-ipv6";
  }
  return "unknown";
}

std::uint64_t FiveTuple::Hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(src_ip, 4);
  mix(dst_ip, 4);
  mix(src_port, 2);
  mix(dst_port, 2);
  mix(protocol, 1);
  return h;
}

FiveTuple ParsedPacket::Key() const {
  FiveTuple key;
  if (ipv4.has_value()) {
    key.src_ip = ipv4->src_ip;
    key.dst_ip = ipv4->dst_ip;
    key.protocol = ipv4->protocol;
  }
  if (tcp.has_value()) {
    key.src_port = tcp->src_port;
    key.dst_port = tcp->dst_port;
  } else if (udp.has_value()) {
    key.src_port = udp->src_port;
    key.dst_port = udp->dst_port;
  }
  return key;
}

ParsedPacket Parser::Parse(const Packet& packet) const {
  return Parse(packet.bytes().data(), packet.size());
}

void Parser::ParseBatch(const Packet* packets, std::size_t count,
                        std::vector<ParsedPacket>& out) const {
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = Parse(packets[i].bytes().data(), packets[i].size());
  }
}

ParsedPacket Parser::Parse(const std::uint8_t* data, std::size_t len) const {
  ParsedPacket out;

  // --- Ethernet ---
  if (len < EthernetHeader::kSize) {
    out.error = ParseError::kTruncatedEthernet;
    return out;
  }
  for (int i = 0; i < 6; ++i) out.eth.dst[static_cast<std::size_t>(i)] = data[i];
  for (int i = 0; i < 6; ++i) {
    out.eth.src[static_cast<std::size_t>(i)] = data[6 + i];
  }
  out.eth.ether_type = GetU16(data + 12);
  std::size_t l2_size = EthernetHeader::kSize;
  if (out.eth.ether_type == kEtherTypeVlan) {
    if (len < EthernetHeader::kSize + VlanTag::kSize) {
      out.error = ParseError::kTruncatedEthernet;
      return out;
    }
    const std::uint16_t tci = GetU16(data + 14);
    VlanTag tag;
    tag.pcp = static_cast<std::uint8_t>(tci >> 13);
    tag.dei = (tci & 0x1000) != 0;
    tag.vlan_id = tci & 0x0fff;
    out.vlan = tag;
    out.eth.ether_type = GetU16(data + 16);
    l2_size += VlanTag::kSize;
  }
  if (out.eth.ether_type == kEtherTypeIpv6) {
    // --- IPv6 (fixed header; extension headers not modelled) ---
    const std::uint8_t* ip6 = data + l2_size;
    const std::size_t ip6_avail = len - l2_size;
    if (ip6_avail < Ipv6Header::kSize) {
      out.error = ParseError::kTruncatedIpv6;
      return out;
    }
    if ((ip6[0] >> 4) != 6) {
      out.error = ParseError::kBadIpVersion;
      return out;
    }
    Ipv6Header v6;
    v6.traffic_class = static_cast<std::uint8_t>(
        ((ip6[0] & 0x0f) << 4) | (ip6[1] >> 4));
    v6.flow_label = (static_cast<std::uint32_t>(ip6[1] & 0x0f) << 16) |
                    (static_cast<std::uint32_t>(ip6[2]) << 8) | ip6[3];
    v6.payload_length = GetU16(ip6 + 4);
    v6.next_header = ip6[6];
    v6.hop_limit = ip6[7];
    for (std::size_t i = 0; i < 16; ++i) {
      v6.src[i] = ip6[8 + i];
      v6.dst[i] = ip6[24 + i];
    }
    out.ipv6 = v6;

    const std::uint8_t* l4v6 = ip6 + Ipv6Header::kSize;
    const std::size_t l4v6_avail = ip6_avail - Ipv6Header::kSize;
    std::size_t l4v6_size = 0;
    if (v6.next_header == kIpProtoUdp) {
      if (l4v6_avail < UdpHeader::kSize) {
        out.error = ParseError::kTruncatedL4;
        return out;
      }
      UdpHeader udp;
      udp.src_port = GetU16(l4v6);
      udp.dst_port = GetU16(l4v6 + 2);
      udp.length = GetU16(l4v6 + 4);
      udp.checksum = GetU16(l4v6 + 6);
      out.udp = udp;
      l4v6_size = UdpHeader::kSize;
    } else if (v6.next_header == kIpProtoTcp) {
      if (l4v6_avail < TcpHeader::kSize) {
        out.error = ParseError::kTruncatedL4;
        return out;
      }
      TcpHeader tcp;
      tcp.src_port = GetU16(l4v6);
      tcp.dst_port = GetU16(l4v6 + 2);
      tcp.seq = GetU32(l4v6 + 4);
      tcp.ack = GetU32(l4v6 + 8);
      tcp.flags = l4v6[13];
      tcp.window = GetU16(l4v6 + 14);
      out.tcp = tcp;
      l4v6_size = TcpHeader::kSize;
    }
    out.payload_offset = l2_size + Ipv6Header::kSize + l4v6_size;
    out.payload_length = len - out.payload_offset;
    return out;
  }
  if (out.eth.ether_type != kEtherTypeIpv4) {
    out.error = ParseError::kUnsupportedEtherType;
    return out;
  }

  // --- IPv4 ---
  const std::uint8_t* ip = data + l2_size;
  const std::size_t ip_avail = len - l2_size;
  if (ip_avail < Ipv4Header::kSize) {
    out.error = ParseError::kTruncatedIpv4;
    return out;
  }
  const std::uint8_t version = ip[0] >> 4;
  if (version != 4) {
    out.error = ParseError::kBadIpVersion;
    return out;
  }
  const std::size_t ihl_bytes = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl_bytes < Ipv4Header::kSize || ihl_bytes > ip_avail) {
    out.error = ParseError::kBadIpHeaderLength;
    return out;
  }
  if (options_.verify_checksum &&
      InternetChecksum(ip, ihl_bytes) != 0) {
    out.error = ParseError::kBadIpChecksum;
    return out;
  }
  Ipv4Header ipv4;
  ipv4.dscp = ip[1] >> 2;
  ipv4.ecn = ip[1] & 0x3;
  ipv4.total_length = GetU16(ip + 2);
  ipv4.identification = GetU16(ip + 4);
  ipv4.ttl = ip[8];
  ipv4.protocol = ip[9];
  ipv4.checksum = GetU16(ip + 10);
  ipv4.src_ip = GetU32(ip + 12);
  ipv4.dst_ip = GetU32(ip + 16);
  out.ipv4 = ipv4;

  // --- L4 ---
  const std::uint8_t* l4 = ip + ihl_bytes;
  const std::size_t l4_avail = ip_avail - ihl_bytes;
  std::size_t l4_size = 0;
  if (ipv4.protocol == kIpProtoTcp) {
    if (l4_avail < TcpHeader::kSize) {
      out.error = ParseError::kTruncatedL4;
      return out;
    }
    TcpHeader tcp;
    tcp.src_port = GetU16(l4);
    tcp.dst_port = GetU16(l4 + 2);
    tcp.seq = GetU32(l4 + 4);
    tcp.ack = GetU32(l4 + 8);
    tcp.flags = l4[13];
    tcp.window = GetU16(l4 + 14);
    const std::size_t data_offset = static_cast<std::size_t>(l4[12] >> 4) * 4;
    if (data_offset < TcpHeader::kSize || data_offset > l4_avail) {
      out.error = ParseError::kTruncatedL4;
      return out;
    }
    out.tcp = tcp;
    l4_size = data_offset;
  } else if (ipv4.protocol == kIpProtoUdp) {
    if (l4_avail < UdpHeader::kSize) {
      out.error = ParseError::kTruncatedL4;
      return out;
    }
    UdpHeader udp;
    udp.src_port = GetU16(l4);
    udp.dst_port = GetU16(l4 + 2);
    udp.length = GetU16(l4 + 4);
    udp.checksum = GetU16(l4 + 6);
    out.udp = udp;
    l4_size = UdpHeader::kSize;
  }
  // Other protocols: header parsing stops at IPv4, which is still ok().

  out.payload_offset = l2_size + ihl_bytes + l4_size;
  out.payload_length = len - out.payload_offset;
  return out;
}

}  // namespace analognf::net
