#include "analognf/core/pcam_hardware.hpp"

#include <cmath>
#include <stdexcept>

namespace analognf::core {
namespace {

// Programming pulse used when (re)writing a threshold. Amplitude and
// width are in the Nb:SrTiO3 operating regime; the exact values only
// affect the programming-energy account, not the data path.
constexpr double kProgramPulseV = 2.0;
constexpr double kProgramPulseWidthS = 1.0e-3;

device::MemristorParams MakeCellDevice(const HardwarePcamConfig& config,
                                       analognf::RandomStream& rng) {
  if (config.apply_device_variation) {
    return config.variation.Apply(config.device, rng);
  }
  return config.device;
}

}  // namespace

void HardwarePcamConfig::Validate() const {
  device.Validate();
  channel.Validate();
  if (state_levels < 2) {
    throw std::invalid_argument("HardwarePcamConfig: state_levels < 2");
  }
}

HardwarePcamCell::HardwarePcamCell(const PcamParams& target,
                                   HardwarePcamConfig config)
    : config_([&] {
        config.Validate();
        return config;
      }()),
      quantizer_(0.0, 1.0, config_.state_levels),
      low_([&] {
        analognf::RandomStream rng(config_.seed);
        return device::Memristor(MakeCellDevice(config_, rng));
      }()),
      high_([&] {
        analognf::RandomStream rng(config_.seed ^ 0x5a5a5a5aULL);
        return device::Memristor(MakeCellDevice(config_, rng));
      }()),
      target_(target),
      effective_(target),  // placeholder; Reprogram() sets the real one
      channel_(config_.channel, analognf::RandomStream(config_.seed ^ 0xc4)) {
  target.Validate();
  Reprogram(target);
}

double HardwarePcamCell::SnapThreshold(double threshold_v,
                                       device::Memristor& dev) {
  // Normalise the threshold into [0,1] over the input range, snap to the
  // device's state ladder, program the device there.
  const double t = config_.input_range.Normalize(threshold_v);
  const double snapped_t = quantizer_.Quantize(t);
  dev.SetState(snapped_t);
  program_energy_j_ += dev.ProgramEnergyJ(kProgramPulseV, kProgramPulseWidthS);
  return config_.input_range.Denormalize(snapped_t);
}

void HardwarePcamCell::Reprogram(const PcamParams& target) {
  target.Validate();
  target_ = target;

  const double skirt_a = target.m2 - target.m1;
  const double skirt_b = target.m4 - target.m3;

  PcamParams snapped = target;
  snapped.m2 = SnapThreshold(target.m2, low_);
  snapped.m3 = SnapThreshold(target.m3, high_);
  // Device quantisation can collapse the window ordering; the physical
  // cell cannot store m2 > m3, so push the high bound up one step.
  if (snapped.m2 > snapped.m3) snapped.m3 = snapped.m2;
  snapped.m1 = snapped.m2 - skirt_a;
  snapped.m4 = snapped.m3 + skirt_b;
  // Preserve the programmed slopes (they live in the sense amp, not the
  // devices); rails likewise.
  effective_.Program(snapped);
  conductance_sum_s_ = low_.ConductanceS() + high_.ConductanceS();
}

void HardwarePcamCell::Program(const PcamParams& target) {
  Reprogram(target);
}

void HardwarePcamCell::Age(double dt_s) {
  low_.Relax(dt_s);
  high_.Relax(dt_s);
  // Re-derive the realised transfer function from the decayed device
  // states; the skirt widths and rails live in the sense amp and are
  // unaffected by retention.
  PcamParams aged = effective_.params();
  const double skirt_a = aged.m2 - aged.m1;
  const double skirt_b = aged.m4 - aged.m3;
  aged.m2 = config_.input_range.Denormalize(low_.state());
  aged.m3 = config_.input_range.Denormalize(high_.state());
  if (aged.m2 > aged.m3) aged.m3 = aged.m2;
  aged.m1 = aged.m2 - skirt_a;
  aged.m4 = aged.m3 + skirt_b;
  effective_.Program(aged);
  conductance_sum_s_ = low_.ConductanceS() + high_.ConductanceS();
}

double HardwarePcamCell::SearchEnergyJ(double input_v) const {
  return input_v * input_v * conductance_sum_s_ * config_.device.read_time_s;
}

PcamEvalResult HardwarePcamCell::Evaluate(double input_v) {
  const double line_v = channel_.Transmit(input_v);
  PcamEvalResult result;
  result.energy_j = SearchEnergyJ(line_v);
  result.output = effective_.Evaluate(line_v);
  result.region = effective_.RegionOf(line_v);
  search_energy_j_ += result.energy_j;
  ++searches_;
  return result;
}

}  // namespace analognf::core
