#include "analognf/core/pcam_search_engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "analognf/common/simd.hpp"
#include "analognf/common/thread_pool.hpp"
#include "analognf/core/pcam_array.hpp"

namespace analognf::core {

void PcamSearchConfig::Validate() const {
  if (thread_row_threshold == 0) {
    throw std::invalid_argument(
        "PcamSearchConfig: thread_row_threshold must be >= 1");
  }
}

PcamSearchEngine::PcamSearchEngine(std::size_t field_count,
                                   const HardwarePcamConfig& hardware,
                                   PcamSearchConfig config)
    : field_count_(field_count),
      config_(config),
      read_time_s_(hardware.device.read_time_s),
      line_gain_(hardware.channel.line_gain),
      stateless_channel_(hardware.channel.IsStateless()),
      columns_(field_count),
      field_g_total_(field_count, 0.0) {
  config_.Validate();
  if (config_.bank_rows != 0 && !stateless_channel_) {
    // A skipped bank would also skip its cells' noise streams, silently
    // desynchronising them from the unbanked walk.
    throw std::invalid_argument(
        "PcamSearchConfig: bank_rows requires a stateless channel");
  }
}

std::size_t PcamSearchEngine::bank_count() const {
  if (config_.bank_rows == 0) return 0;
  return (rows_ + config_.bank_rows - 1) / config_.bank_rows;
}

void PcamSearchEngine::AppendRow() {
  for (FieldColumn& c : columns_) {
    c.m1.push_back(0.0);
    c.m2.push_back(0.0);
    c.m3.push_back(0.0);
    c.m4.push_back(0.0);
    c.sa.push_back(0.0);
    c.sb.push_back(0.0);
    c.ia.push_back(0.0);
    c.ib.push_back(0.0);
    c.pmin.push_back(0.0);
    c.pmax.push_back(0.0);
    c.g_sum.push_back(0.0);
  }
  dirty_.push_back(1);
  dirty_rows_.push_back(rows_);
  ++rows_;
  any_dirty_ = true;
}

void PcamSearchEngine::InvalidateRow(std::size_t row) {
  if (dirty_.at(row) == 0) {
    dirty_[row] = 1;
    dirty_rows_.push_back(row);
  }
  any_dirty_ = true;
}

void PcamSearchEngine::InvalidateAll() {
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{1});
  all_dirty_ = true;
  any_dirty_ = !dirty_.empty();
}

void PcamSearchEngine::RefreshRow(const std::vector<PcamWord>& words,
                                  std::size_t row) {
  const PcamWord& word = words[row];
  assert(word.width() == field_count_);
  for (std::size_t f = 0; f < field_count_; ++f) {
    const HardwarePcamCell& cell = word.cell(f);
    const PcamParams& p = cell.effective_params();
    FieldColumn& c = columns_[f];
    c.m1[row] = p.m1;
    c.m2[row] = p.m2;
    c.m3[row] = p.m3;
    c.m4[row] = p.m4;
    c.sa[row] = p.sa;
    c.sb[row] = p.sb;
    // The skirt intercepts of PcamCell::Evaluate, hoisted out of the
    // per-search loop; the division happens once per (re)program.
    c.ia[row] = (p.m2 * p.pmin - p.m1 * p.pmax) / (p.m2 - p.m1);
    c.ib[row] = (p.m4 * p.pmax - p.m3 * p.pmin) / (p.m4 - p.m3);
    c.pmin[row] = p.pmin;
    c.pmax[row] = p.pmax;
    c.g_sum[row] = cell.ConductanceSumS();
  }
  dirty_[row] = 0;
}

void PcamSearchEngine::CommitRows(const std::vector<PcamWord>& words) {
  Refresh(words);
}

void PcamSearchEngine::Refresh(const std::vector<PcamWord>& words) {
  if (!any_dirty_) return;
  telemetry_.recompiles.Inc();
  assert(words.size() == rows_);
  if (all_dirty_) {
    for (std::size_t r = 0; r < rows_; ++r) {
      if (dirty_[r] != 0) RefreshRow(words, r);
    }
  } else {
    for (const std::size_t r : dirty_rows_) RefreshRow(words, r);
  }
  dirty_rows_.clear();
  all_dirty_ = false;
  // Per-field conductance totals feed the whole-array energy term of
  // stateless searches (energy = sum_f V_f^2 * t_read * sum_r G). A full
  // recompute keeps the total deterministic regardless of which rows
  // were refreshed.
  for (std::size_t f = 0; f < field_count_; ++f) {
    const std::vector<double>& g = columns_[f].g_sum;
    double total = 0.0;
    for (double v : g) total += v;
    field_g_total_[f] = total;
  }
  if (config_.bank_rows != 0) RefreshBankMeta();
  any_dirty_ = false;
}

void PcamSearchEngine::RefreshBankMeta() {
  const std::size_t banks = bank_count();
  bank_m1_min_.assign(banks * field_count_, 0.0);
  bank_m4_max_.assign(banks * field_count_, 0.0);
  bank_zero_ok_.assign(banks * field_count_, 0);
  bank_g_.assign(banks * field_count_, 0.0);
  bank_nonneg_.assign(banks, 1);
  for (std::size_t b = 0; b < banks; ++b) {
    const std::size_t r0 = b * config_.bank_rows;
    const std::size_t r1 = std::min(r0 + config_.bank_rows, rows_);
    for (std::size_t f = 0; f < field_count_; ++f) {
      const FieldColumn& c = columns_[f];
      double m1_min = c.m1[r0];
      double m4_max = c.m4[r0];
      double g = 0.0;
      bool zero_ok = true;
      for (std::size_t r = r0; r < r1; ++r) {
        m1_min = std::min(m1_min, c.m1[r]);
        m4_max = std::max(m4_max, c.m4[r]);
        g += c.g_sum[r];
        zero_ok = zero_ok && c.pmin[r] == 0.0;
        if (c.pmin[r] < 0.0) bank_nonneg_[b] = 0;
      }
      const std::size_t k = b * field_count_ + f;
      bank_m1_min_[k] = m1_min;
      bank_m4_max_[k] = m4_max;
      bank_zero_ok_[k] = zero_ok ? 1 : 0;
      bank_g_[k] = g;
    }
  }
}

double PcamSearchEngine::EvalCell(const FieldColumn& c, std::size_t row,
                                  double v) const {
  const double rising = c.sa[row] * v + c.ia[row];
  const double falling = c.sb[row] * v + c.ib[row];
  double out = (v < c.m2[row]) ? rising : c.pmax[row];
  out = (v > c.m3[row]) ? falling : out;
  out = (v <= c.m1[row] || v >= c.m4[row]) ? c.pmin[row] : out;
  return std::min(std::max(out, c.pmin[row]), c.pmax[row]);
}

std::size_t PcamSearchEngine::ShardCount() const {
  if (rows_ < config_.thread_row_threshold) return 1;
  const std::size_t parallelism =
      config_.max_threads != 0 ? config_.max_threads
                               : ThreadPool::Shared().size() + 1;
  return std::clamp<std::size_t>(parallelism, 1, rows_);
}

void PcamSearchEngine::SearchStatelessBanked(const double* query,
                                             std::vector<double>& degrees,
                                             PcamSearchOutcome& out) {
  line_v_.resize(field_count_);
  for (std::size_t f = 0; f < field_count_; ++f) {
    line_v_[f] = query[f] * line_gain_;
  }

  // Skipped rows score exactly what the full sweep would compute: some
  // field's output is its pmin rail (exactly 0.0 for every row in the
  // bank) and every other factor is non-negative and finite, so the row
  // product is exactly +0.0 in any field order. The bank stays undriven
  // and burns no read energy.
  degrees.assign(rows_, 1.0);
  const std::size_t banks = bank_count();
  double energy = 0.0;
  std::size_t driven = 0;
  for (std::size_t b = 0; b < banks; ++b) {
    const std::size_t r0 = b * config_.bank_rows;
    const std::size_t r1 = std::min(r0 + config_.bank_rows, rows_);
    bool skip = false;
    if (bank_nonneg_[b] != 0) {
      for (std::size_t f = 0; f < field_count_; ++f) {
        const std::size_t k = b * field_count_ + f;
        if (bank_zero_ok_[k] != 0 && (line_v_[f] <= bank_m1_min_[k] ||
                                      line_v_[f] >= bank_m4_max_[k])) {
          skip = true;
          break;
        }
      }
    }
    if (skip) {
      std::fill(degrees.begin() + static_cast<std::ptrdiff_t>(r0),
                degrees.begin() + static_cast<std::ptrdiff_t>(r1), 0.0);
      continue;
    }
    ++driven;
    for (std::size_t f = 0; f < field_count_; ++f) {
      const double lv = line_v_[f];
      energy += lv * lv * read_time_s_ * bank_g_[b * field_count_ + f];
      const FieldColumn& c = columns_[f];
      const simd::PcamColumnSpan span{
          c.m1.data(), c.m2.data(), c.m3.data(), c.m4.data(),
          c.sa.data(), c.sb.data(), c.ia.data(), c.ib.data(),
          c.pmin.data(), c.pmax.data()};
      simd::PcamColumnEval(span, lv, degrees.data(), r0, r1);
    }
  }
  out.energy_j = energy;
  last_driven_banks_ = driven;

  // One flat arg-max pass over every row — the exact tie rule (lowest
  // index on equal degree) of the unbanked sweep, regardless of which
  // banks were skipped.
  std::size_t best = 0;
  for (std::size_t r = 1; r < rows_; ++r) {
    if (degrees[r] > degrees[best]) best = r;
  }
  out.best_row = best;
  out.best_degree = degrees[best];
}

void PcamSearchEngine::SearchStateless(const double* query,
                                       std::vector<double>& degrees,
                                       PcamSearchOutcome& out) {
  if (config_.bank_rows != 0) {
    SearchStatelessBanked(query, degrees, out);
    return;
  }
  line_v_.resize(field_count_);
  double energy = 0.0;
  for (std::size_t f = 0; f < field_count_; ++f) {
    const double lv = query[f] * line_gain_;
    line_v_[f] = lv;
    // All rows of a field see the same line voltage, so the array's read
    // energy collapses to one multiply per field.
    energy += lv * lv * read_time_s_ * field_g_total_[f];
  }
  out.energy_j = energy;

  degrees.assign(rows_, 1.0);
  const std::size_t shards = ShardCount();
  shard_best_.assign(shards, 0);
  shard_degree_.assign(shards, 0.0);
  const std::size_t chunk = (rows_ + shards - 1) / shards;

  auto eval_shard = [&](std::size_t s) {
    const std::size_t r0 = s * chunk;
    const std::size_t r1 = std::min(r0 + chunk, rows_);
    double* deg = degrees.data();
    for (std::size_t f = 0; f < field_count_; ++f) {
      const FieldColumn& c = columns_[f];
      // Explicit SIMD column sweep (4 rows per AVX2 iteration), same
      // arithmetic as PcamCell::Evaluate in every region — the scalar
      // fallback and the AVX2 kernel are bit-identical by construction
      // (common/simd.hpp).
      const simd::PcamColumnSpan span{
          c.m1.data(), c.m2.data(), c.m3.data(), c.m4.data(),
          c.sa.data(), c.sb.data(), c.ia.data(), c.ib.data(),
          c.pmin.data(), c.pmax.data()};
      simd::PcamColumnEval(span, line_v_[f], deg, r0, r1);
    }
    // Shard-local arg-max (ties: lowest row index).
    std::size_t best = r0;
    for (std::size_t r = r0 + 1; r < r1; ++r) {
      if (deg[r] > deg[best]) best = r;
    }
    shard_best_[s] = best;
    shard_degree_[s] = deg[best];
  };

  if (shards == 1) {
    eval_shard(0);
  } else {
    ThreadPool& pool = ThreadPool::Shared();
    pool.ParallelFor(shards, eval_shard);
  }

  // Merging in ascending shard order preserves the lowest-index tie rule.
  std::size_t best = shard_best_[0];
  double best_degree = shard_degree_[0];
  for (std::size_t s = 1; s < shards; ++s) {
    if (shard_degree_[s] > best_degree) {
      best = shard_best_[s];
      best_degree = shard_degree_[s];
    }
  }
  out.best_row = best;
  out.best_degree = best_degree;
}

void PcamSearchEngine::SearchStateful(std::vector<PcamWord>& words,
                                      const double* query,
                                      std::vector<double>& degrees,
                                      PcamSearchOutcome& out) {
  // Row-major walk in the legacy order (fields within a row, rows
  // ascending) so each cell's channel consumes exactly the noise stream
  // the scalar implementation would have drawn.
  degrees.assign(rows_, 0.0);
  double energy = 0.0;
  std::size_t best = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    PcamWord& word = words[r];
    double deg = 1.0;
    for (std::size_t f = 0; f < field_count_; ++f) {
      const double lv = word.cell(f).channel().Transmit(query[f]);
      deg *= EvalCell(columns_[f], r, lv);
      energy += lv * lv * columns_[f].g_sum[r] * read_time_s_;
    }
    degrees[r] = deg;
    if (deg > degrees[best]) best = r;
  }
  out.best_row = best;
  out.best_degree = degrees[best];
  out.energy_j = energy;
}

PcamSearchOutcome PcamSearchEngine::Search(std::vector<PcamWord>& words,
                                           const double* query,
                                           std::vector<double>& degrees) {
  assert(rows_ > 0);
  Refresh(words);
  // The analog array drives the search voltage onto every stored row.
  telemetry_.searches.Inc();
  telemetry_.rows_scanned.Inc(rows_);
  PcamSearchOutcome out;
  if (stateless_channel_) {
    SearchStateless(query, degrees, out);
  } else {
    SearchStateful(words, query, degrees, out);
  }
  return out;
}

void PcamSearchEngine::SearchBatch(std::vector<PcamWord>& words,
                                   const double* queries, std::size_t count,
                                   std::vector<PcamSearchOutcome>& outcomes,
                                   std::vector<double>& degrees) {
  assert(rows_ > 0 && count > 0);
  Refresh(words);
  telemetry_.searches.Inc(count);
  telemetry_.rows_scanned.Inc(rows_ * count);
  outcomes.assign(count, PcamSearchOutcome{});

  if (stateless_channel_) {
    if (count < rows_ || config_.bank_rows != 0) {
      // Few queries over a tall table: N column sweeps (each SIMD over
      // rows). The final probe writes the caller's degree buffer so
      // last_degrees() semantics match sequential calls. Banked tables
      // always take this path — it is the one that skips undriven banks
      // per query and charges only their energy.
      batch_deg_.clear();
      for (std::size_t q = 0; q < count; ++q) {
        std::vector<double>& deg =
            (q + 1 == count) ? degrees : batch_deg_;
        SearchStateless(queries + q * field_count_, deg, outcomes[q]);
      }
      return;
    }
    // Many queries over a short table (the in-pipeline classifiers):
    // query-major sweep — each (row, field) cell evaluates the whole
    // query block in one SIMD pass. Per query, the arithmetic, its
    // order (energy over fields ascending, then degree products and the
    // ascending-row arg-max) and the lowest-row tie rule are exactly
    // SearchStateless's, so both layouts return bit-identical outcomes
    // and the batched pipeline stays equivalent to per-packet searches.
    batch_line_.resize(field_count_ * count);
    for (std::size_t q = 0; q < count; ++q) {
      const double* query = queries + q * field_count_;
      double energy = 0.0;
      for (std::size_t f = 0; f < field_count_; ++f) {
        const double lv = query[f] * line_gain_;
        batch_line_[f * count + q] = lv;
        energy += lv * lv * read_time_s_ * field_g_total_[f];
      }
      outcomes[q].energy_j = energy;
    }
    degrees.assign(rows_, 0.0);
    batch_deg_.resize(count);
    for (std::size_t r = 0; r < rows_; ++r) {
      std::fill(batch_deg_.begin(), batch_deg_.end(), 1.0);
      for (std::size_t f = 0; f < field_count_; ++f) {
        const FieldColumn& c = columns_[f];
        const simd::PcamCellParams params{c.m1[r], c.m2[r],   c.m3[r],
                                          c.m4[r], c.sa[r],   c.sb[r],
                                          c.ia[r], c.ib[r],   c.pmin[r],
                                          c.pmax[r]};
        simd::PcamCellEvalBatch(params, batch_line_.data() + f * count,
                                batch_deg_.data(), count);
      }
      for (std::size_t q = 0; q < count; ++q) {
        if (r == 0 || batch_deg_[q] > outcomes[q].best_degree) {
          outcomes[q].best_row = r;
          outcomes[q].best_degree = batch_deg_[q];
        }
      }
      degrees[r] = batch_deg_[count - 1];
    }
    return;
  }

  // Stateful channels: amortize noise sampling by drawing each cell's
  // channel outputs for the whole batch in one TransmitBatch call. The
  // per-cell streams interleave differently than sequential Search()
  // calls would (batch blocks instead of round-robin), which is fine:
  // noise is noise.
  degrees.assign(rows_, 0.0);
  batch_in_.resize(count);
  batch_line_.resize(count);
  batch_deg_.resize(count);
  for (std::size_t r = 0; r < rows_; ++r) {
    PcamWord& word = words[r];
    std::fill(batch_deg_.begin(), batch_deg_.end(), 1.0);
    for (std::size_t f = 0; f < field_count_; ++f) {
      for (std::size_t q = 0; q < count; ++q) {
        batch_in_[q] = queries[q * field_count_ + f];
      }
      word.cell(f).channel().TransmitBatch(batch_in_.data(),
                                           batch_line_.data(), count);
      const FieldColumn& c = columns_[f];
      const double g_rt = c.g_sum[r] * read_time_s_;
      // Row-constant SIMD evaluation across the batch's line voltages
      // (4 queries per AVX2 iteration); bit-identical to EvalCell.
      const simd::PcamCellParams params{c.m1[r], c.m2[r],   c.m3[r],
                                        c.m4[r], c.sa[r],   c.sb[r],
                                        c.ia[r], c.ib[r],   c.pmin[r],
                                        c.pmax[r]};
      simd::PcamCellEvalBatch(params, batch_line_.data(), batch_deg_.data(),
                              count);
      for (std::size_t q = 0; q < count; ++q) {
        const double lv = batch_line_[q];
        outcomes[q].energy_j += lv * lv * g_rt;
      }
    }
    for (std::size_t q = 0; q < count; ++q) {
      if (r == 0 || batch_deg_[q] > outcomes[q].best_degree) {
        outcomes[q].best_row = r;
        outcomes[q].best_degree = batch_deg_[q];
      }
    }
    degrees[r] = batch_deg_[count - 1];
  }
}

}  // namespace analognf::core
