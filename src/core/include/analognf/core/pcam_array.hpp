// pCAM words and tables: analog match-action storage (Fig. 4b, Fig. 5).
//
// A word is one stored policy: a row of hardware pCAM cells, one per
// match field, whose outputs multiply into the row's match degree (the
// series composition of Fig. 4b). A table is a set of words with
// actions; a search evaluates every row in parallel — like a TCAM, but
// returning a *degree* of match per row instead of hit/miss, which is
// what lets cognitive functions find "the closely matching stored
// policies for an incoming query with zero [exact] matches" (RQ1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analognf/common/rng.hpp"
#include "analognf/core/pcam_hardware.hpp"

namespace analognf::core {

// One stored policy row.
class PcamWord {
 public:
  // One cell per field. `config` applies to every cell; per-cell seeds
  // are derived so device variation differs across cells.
  PcamWord(const std::vector<PcamParams>& fields,
           const HardwarePcamConfig& config);

  std::size_t width() const { return cells_.size(); }

  // Evaluates all fields against `inputs` (size must equal width) and
  // returns the product of cell outputs plus total energy.
  PcamEvalResult Evaluate(const std::vector<double>& inputs);

  // Reprograms field `index`.
  void ProgramField(std::size_t index, const PcamParams& params);

  HardwarePcamCell& cell(std::size_t index) { return cells_.at(index); }
  const HardwarePcamCell& cell(std::size_t index) const {
    return cells_.at(index);
  }

 private:
  std::vector<HardwarePcamCell> cells_;
};

// Result of a table search.
struct PcamTableResult {
  std::size_t row_index = 0;
  std::uint32_t action = 0;
  double match_degree = 0.0;  // product of cell outputs for the best row
  double energy_j = 0.0;      // whole-array search energy
};

// Analog match-action table.
class PcamTable {
 public:
  struct Row {
    std::string label;
    std::vector<PcamParams> fields;
    std::uint32_t action = 0;
  };

  // `field_count` fixes the table width; every row must match it.
  PcamTable(std::size_t field_count, HardwarePcamConfig config);

  std::size_t field_count() const { return field_count_; }
  std::size_t size() const { return words_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  // Adds a row; returns its index.
  std::size_t Insert(Row row);

  // Full-array search: every row evaluates `inputs`; the highest match
  // degree wins (ties: lowest index). Returns nullopt only for an empty
  // table. Energy covers all rows (they all saw the search voltage).
  std::optional<PcamTableResult> Search(const std::vector<double>& inputs);

  // Per-row degrees of the last Search() (diagnostics / soft selection).
  const std::vector<double>& last_degrees() const { return last_degrees_; }

  // Probabilistic action selection: rows weighted by match degree
  // (the "probable match" semantics of RQ1 turned into a decision).
  // Returns nullopt if all degrees are zero or the table is empty.
  std::optional<PcamTableResult> SampleByDegree(
      const std::vector<double>& inputs, analognf::RandomStream& rng);

  // Reprogram one field of one row.
  void ProgramField(std::size_t row, std::size_t field,
                    const PcamParams& params);

  double ConsumedEnergyJ() const { return consumed_energy_j_; }

 private:
  std::size_t field_count_;
  HardwarePcamConfig config_;
  std::vector<Row> rows_;
  std::vector<PcamWord> words_;
  std::vector<double> last_degrees_;
  double consumed_energy_j_ = 0.0;
  std::uint64_t next_seed_salt_ = 1;
};

}  // namespace analognf::core
