// pCAM words and tables: analog match-action storage (Fig. 4b, Fig. 5).
//
// A word is one stored policy: a row of hardware pCAM cells, one per
// match field, whose outputs multiply into the row's match degree (the
// series composition of Fig. 4b). A table is a set of words with
// actions; a search evaluates every row in parallel — like a TCAM, but
// returning a *degree* of match per row instead of hit/miss, which is
// what lets cognitive functions find "the closely matching stored
// policies for an incoming query with zero [exact] matches" (RQ1).
//
// Searches run on a PcamSearchEngine snapshot (pcam_search_engine.hpp):
// a structure-of-arrays mirror of every cell's effective transfer
// function that evaluates whole columns per probe, dirty-tracked so that
// Insert/ProgramField/Age refresh only the touched rows.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analognf/common/rng.hpp"
#include "analognf/common/table_delta.hpp"
#include "analognf/core/pcam_hardware.hpp"
#include "analognf/core/pcam_search_engine.hpp"

namespace analognf::core {

// One stored policy row.
class PcamWord {
 public:
  // One cell per field. `config` applies to every cell; per-cell seeds
  // are derived so device variation differs across cells.
  PcamWord(const std::vector<PcamParams>& fields,
           const HardwarePcamConfig& config);

  std::size_t width() const { return cells_.size(); }

  // Evaluates all fields against `inputs` (size must equal width) and
  // returns the product of cell outputs plus total energy. The combined
  // region is the worst cell region under RegionSeverity (a single
  // deterministically mismatching field outranks any skirt hit).
  PcamEvalResult Evaluate(const std::vector<double>& inputs);

  // Reprograms field `index`.
  void ProgramField(std::size_t index, const PcamParams& params);

  // Ages every cell by `dt_s` of wall time (retention relaxation).
  void Age(double dt_s);

  HardwarePcamCell& cell(std::size_t index) { return cells_.at(index); }
  const HardwarePcamCell& cell(std::size_t index) const {
    return cells_.at(index);
  }

 private:
  std::vector<HardwarePcamCell> cells_;
};

// Result of a table search.
struct PcamTableResult {
  std::size_t row_index = 0;
  std::uint32_t action = 0;
  double match_degree = 0.0;  // product of cell outputs for the best row
  double energy_j = 0.0;      // whole-array search energy
};

// Analog match-action table.
class PcamTable {
 public:
  struct Row {
    std::string label;
    std::vector<PcamParams> fields;
    std::uint32_t action = 0;
  };

  // `field_count` fixes the table width; every row must match it.
  // `search_config` tunes the search engine (thread sharding).
  PcamTable(std::size_t field_count, HardwarePcamConfig config,
            PcamSearchConfig search_config = {});

  std::size_t field_count() const { return field_count_; }
  std::size_t size() const { return words_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  // Read access to a stored word (diagnostics and tests).
  const PcamWord& word(std::size_t index) const { return words_.at(index); }

  // Adds a row; returns its index. Stages: searches throw until the
  // next Commit().
  std::size_t Insert(Row row);

  // Publishes staged mutations (Insert / ProgramField / Age) into the
  // engine's search snapshot — the same stage-then-Commit() contract as
  // TcamTable / LpmTable: any search between a mutation and Commit()
  // throws std::logic_error. Unlike the TCAM tables there is no
  // RCU-published snapshot to share across threads: pCAM stays
  // single-writer because stateful channels advance per-cell noise
  // streams inside Search itself. Commits are incremental — only the
  // dirty rows refresh — and accounted in commit_stats(): a commit whose
  // staged set touched a strict subset of the rows counts as a delta
  // commit; aging (structural) and first-build commits count as full
  // recompiles (common/table_delta.hpp).
  void Commit();
  bool NeedsCommit() const;
  // Control-plane commit accounting (delta vs full split, rows patched,
  // last commit latency).
  const TableCommitStats& commit_stats() const { return commit_stats_; }

  // Full-array search: every row evaluates `inputs`; the highest match
  // degree wins (ties: lowest index). Returns nullopt only for an empty
  // table. Energy covers all rows (they all saw the search voltage) —
  // or, in banked mode (PcamSearchConfig::bank_rows), only the driven
  // banks. Throws std::logic_error if mutations are staged uncommitted.
  std::optional<PcamTableResult> Search(const std::vector<double>& inputs);

  // Batched search: one snapshot refresh and shared scratch buffers
  // across all probes; with noisy channels, per-cell noise is sampled
  // for the whole batch at once. Returns one result per query (empty if
  // the table is empty); last_degrees() afterwards holds the final
  // query's per-row degrees.
  std::vector<PcamTableResult> SearchBatch(
      const std::vector<std::vector<double>>& queries);
  // Same, with the queries packed row-major (size = k * field_count).
  std::vector<PcamTableResult> SearchBatchFlat(
      const std::vector<double>& queries_flat);

  // Allocation-free core of SearchBatchFlat: `queries_flat` points at
  // query_count x field_count voltages; `results` is cleared and
  // refilled (its capacity persists across calls, so a long-lived
  // caller buffer makes the steady state allocation-free). Identical
  // results to SearchBatchFlat.
  void SearchBatchFlatInto(const double* queries_flat,
                           std::size_t query_count,
                           std::vector<PcamTableResult>& results);

  // Per-row degrees of the last Search() (diagnostics / soft selection).
  const std::vector<double>& last_degrees() const { return last_degrees_; }

  // Probabilistic action selection: rows weighted by match degree
  // (the "probable match" semantics of RQ1 turned into a decision).
  // Returns nullopt if all degrees are zero or the table is empty.
  std::optional<PcamTableResult> SampleByDegree(
      const std::vector<double>& inputs, analognf::RandomStream& rng);

  // Deterministic core of SampleByDegree, exposed for tests and replay:
  // `unit_draw` in [0, 1) selects a row by cumulative degree mass;
  // values >= 1 exercise the numerical-tail fallback (the arg-max row).
  std::optional<PcamTableResult> SampleWithDraw(
      const std::vector<double>& inputs, double unit_draw);

  // Reprogram one field of one row. Stages: searches throw until the
  // next Commit().
  void ProgramField(std::size_t row, std::size_t field,
                    const PcamParams& params);

  // Ages every cell in the table by `dt_s` (retention relaxation). A
  // structural mutation: the next Commit() is a full snapshot rebuild,
  // and searches throw until then.
  void Age(double dt_s);

  // The underlying search engine (diagnostics and tests: bank counts,
  // driven-bank accounting).
  const PcamSearchEngine& search_engine() const { return engine_; }

  double ConsumedEnergyJ() const { return consumed_energy_j_; }

  // Registers `<prefix>.searches/.rows_scanned/.recompiles` in
  // `registry` and binds the search engine to them.
  void BindTelemetry(telemetry::MetricsRegistry& registry,
                     const std::string& prefix);

 private:
  void CheckArity(std::size_t got) const;
  void RequireCommitted() const;  // throws std::logic_error when staged
  PcamTableResult MakeResult(const PcamSearchOutcome& outcome) const;
  std::optional<PcamTableResult> PickByMass(const PcamTableResult& best,
                                            double unit_draw,
                                            double total) const;

  std::size_t field_count_;
  HardwarePcamConfig config_;
  std::vector<Row> rows_;
  std::vector<PcamWord> words_;
  PcamSearchEngine engine_;
  std::vector<double> last_degrees_;
  std::vector<PcamSearchOutcome> batch_outcomes_;  // scratch
  std::vector<double> batch_queries_;              // scratch
  double consumed_energy_j_ = 0.0;
  std::uint64_t next_seed_salt_ = 1;
  TableDelta delta_;  // staged-mutation log, cleared by Commit()
  TableCommitStats commit_stats_;
  telemetry::TableCommitCounters commit_telemetry_;
  // Single-entry search memo: with a stateless channel, Search() is a
  // deterministic function of (snapshot, query), so a bitwise-identical
  // repeat of the previous query can skip the array scan and replay the
  // cached outcome — same degrees (still in last_degrees_), same energy
  // accumulation, same telemetry. Invalidated by any mutation
  // (Insert/ProgramField/Age) and by batch searches, which overwrite
  // last_degrees_. The flow-sticky load balancer queries one constant
  // voltage vector per pick, so this turns its per-packet search into a
  // degree-mass sample.
  bool replay_ok_ = false;
  std::vector<double> last_query_;
  PcamSearchOutcome last_outcome_;
};

}  // namespace analognf::core
