// Programming abstractions for analog network functions (Sec. 5).
//
// The paper sketches a declarative surface for analog match-action
// tables:
//
//   function prog_pCAM()  { program(M1,M2,M3,M4,Sa,Sb,pmax,pmin); }
//   function pCAM(in,out) { ...five-region transfer... }
//   function AQM()        { drop = pipeline { pCAM(sojourn_time), ... } }
//   table analogAQM       { read {...} output { AQM(); } action { update_pCAM(); } }
//   action update_pCAM(id, parameter[1:8]) { set_field(...); }
//
// This module is that surface: an AnalogTableSpec declares the read
// fields and per-field pCAM programs; AnalogMatchActionTable compiles it
// onto hardware cells, evaluates the output section, and exposes
// update_pCAM as the action. The AQM network function (src/aqm) and the
// examples program themselves exclusively through this API, as an
// application would.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analognf/core/pipeline.hpp"

namespace analognf::core {

// prog_pCAM(): names the paper's eight-parameter program explicitly.
// (PcamParams is the storage type; this wrapper documents intent at call
// sites that mirror the paper's listings.)
inline PcamParams ProgPcam(double m1, double m2, double m3, double m4,
                           double sa, double sb, double pmax, double pmin) {
  PcamParams p;
  p.m1 = m1;
  p.m2 = m2;
  p.m3 = m3;
  p.m4 = m4;
  p.sa = sa;
  p.sb = sb;
  p.pmax = pmax;
  p.pmin = pmin;
  p.Validate();
  return p;
}

// Declaration of one read field and its match program.
struct AnalogFieldSpec {
  std::string name;     // e.g. "sojourn_time", "d2/dt2(buffer_size)"
  PcamParams program;   // prog_pCAM parameters for this field
};

// Declaration of an analog match-action table.
struct AnalogTableSpec {
  std::string name;
  std::vector<AnalogFieldSpec> read;   // the `read { ... }` section
  CombineMode combine = CombineMode::kProduct;

  void Validate() const;  // throws std::invalid_argument
};

// A compiled analog match-action table.
class AnalogMatchActionTable {
 public:
  struct Output {
    double value = 0.0;              // raw analog output (e.g. the PDP)
    std::vector<double> per_field;   // per-stage outputs
    double energy_j = 0.0;
  };

  AnalogMatchActionTable(AnalogTableSpec spec,
                         HardwarePcamConfig hardware);

  // The `output { ... }` section: evaluates the pipeline on a feature
  // vector ordered like spec().read.
  Output Apply(const std::vector<double>& features);

  // Allocation-free variant: writes into `out`, reusing its per_field
  // capacity (and an internal pipeline scratch result).
  void Apply(const std::vector<double>& features, Output& out);

  // The `action { update_pCAM(); }` section: reprograms field `id`.
  void UpdatePcam(std::size_t id, const PcamParams& parameters);
  // Same, addressing the field by name. Throws if the name is unknown.
  void UpdatePcam(const std::string& field_name,
                  const PcamParams& parameters);

  // Index of a read field by name (nullopt if absent).
  std::optional<std::size_t> FieldIndex(const std::string& name) const;

  const AnalogTableSpec& spec() const { return spec_; }
  PcamPipeline& pipeline() { return pipeline_; }
  const PcamPipeline& pipeline() const { return pipeline_; }

 private:
  AnalogTableSpec spec_;
  PcamPipeline pipeline_;
  PcamPipeline::Result apply_scratch_;
};

}  // namespace analognf::core
