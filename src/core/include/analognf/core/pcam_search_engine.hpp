// Vectorized batched pCAM search engine.
//
// Real analog CAM hardware evaluates every stored row in parallel on a
// single search voltage (Li et al., "Analog content addressable memories
// with memristors"). The object-per-cell model in pcam_array.hpp is the
// right abstraction for programming and aging, but walking it row by row
// costs two exponentials (device conductances) and a virtual-ish branchy
// transfer evaluation per cell per search. This engine restores the
// hardware's all-rows-at-once shape in software:
//
//   * Snapshot: the effective (post-quantisation) transfer parameters,
//     derived slope intercepts and device conductance sums of every cell
//     are mirrored into a structure-of-arrays, column-major layout — one
//     contiguous array per parameter per field, indexed by row. The
//     five-region piecewise-linear map then evaluates as branch-light
//     select chains over whole columns that the compiler auto-vectorizes.
//   * Dirty tracking: Insert/ProgramField/Age on the owning table
//     invalidate only the touched rows; a search refreshes those rows
//     and reuses the rest of the snapshot untouched.
//   * Batching: SearchBatch() evaluates many probes against one snapshot
//     refresh, reusing all scratch buffers and (for noisy channels)
//     drawing each cell's channel-noise samples for the whole batch in
//     one TransmitBatch call.
//   * Threading: for tables with at least `thread_row_threshold` rows,
//     stateless-channel searches shard row ranges across the shared
//     ThreadPool. Row products are computed independently per row and
//     shard arg-maxes merge in ascending order, so results are identical
//     to the single-threaded pass.
//
// Semantics: with a stateless channel (no AWGN, no crosstalk) the engine
// reproduces the scalar PcamWord-walk bit-for-bit modulo floating-point
// association in the energy total. With a stateful channel, single
// Search() calls consume each cell's noise stream in the exact legacy
// order (fields within a row, rows ascending); SearchBatch() draws
// per-cell noise in batch-sized blocks instead, which is statistically
// equivalent but a different stream interleaving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analognf/core/pcam_hardware.hpp"
#include "analognf/telemetry/metrics.hpp"

namespace analognf::core {

class PcamWord;

// Tuning knobs for the engine, per table.
struct PcamSearchConfig {
  // Row count at which stateless searches start sharding across the
  // shared thread pool. Small tables stay single-threaded: the fork/join
  // handshake costs more than the scan.
  std::size_t thread_row_threshold = 8192;
  // Upper bound on shards (0 = one per available core). Values > 1 force
  // the sharded code path even on a single-core host, which keeps the
  // merge logic testable everywhere.
  std::size_t max_threads = 0;
  // Rows per bank for banked pre-selection (0 = unbanked, the default).
  // A banked array splits its rows into fixed-size banks, each with its
  // own conductance columns; before a search drives a bank, cheap
  // per-bank bounds (min m1 / max m4 per field, recomputed on refresh)
  // decide whether every row in it is *guaranteed* an exactly-zero match
  // degree for this query — such banks are not driven at all: their rows
  // score 0.0 (the value the full sweep would produce bit-for-bit) and
  // they contribute no read energy, so search energy becomes sublinear
  // in table size for selective queries. Banked mode requires a
  // stateless channel: stateful channels must advance every cell's noise
  // stream, so no row may be skipped.
  std::size_t bank_rows = 0;

  void Validate() const;  // throws std::invalid_argument
};

// One query's outcome. Per-row degrees land in the caller's buffer.
struct PcamSearchOutcome {
  std::size_t best_row = 0;
  double best_degree = 0.0;
  double energy_j = 0.0;  // whole-array energy for this probe
};

class PcamSearchEngine {
 public:
  PcamSearchEngine(std::size_t field_count,
                   const HardwarePcamConfig& hardware,
                   PcamSearchConfig config);

  // --- snapshot maintenance (driven by the owning PcamTable) ----------
  void AppendRow();                     // grow columns; new row is dirty
  void InvalidateRow(std::size_t row);  // e.g. after ProgramField
  void InvalidateAll();                 // e.g. after Age

  std::size_t rows() const { return rows_; }
  std::size_t field_count() const { return field_count_; }
  const PcamSearchConfig& config() const { return config_; }

  // Bank count in banked mode (0 when unbanked) and how many banks the
  // most recent stateless search actually drove (== bank count for an
  // unselective query; 0 when unbanked). Diagnostics and tests.
  std::size_t bank_count() const;
  std::size_t last_driven_banks() const { return last_driven_banks_; }

  // Rebuilds the dirty snapshot rows now, off the hot path, so the next
  // search pays no refresh. Searches still refresh lazily when needed
  // (the table is single-writer), so this is a latency optimization
  // point, not a correctness requirement.
  void CommitRows(const std::vector<PcamWord>& words);
  bool NeedsRefresh() const { return any_dirty_; }

  // --- search ---------------------------------------------------------
  // One probe. `query` holds field_count() voltages; `degrees` is
  // resized to rows() and filled with per-row match degrees. `words` is
  // the owning table's row storage (mutable: stateful channels advance
  // their noise streams). Requires rows() > 0.
  PcamSearchOutcome Search(std::vector<PcamWord>& words, const double* query,
                           std::vector<double>& degrees);

  // `count` probes, row-major (count x field_count). Fills `outcomes`
  // (one per probe) and leaves the final probe's per-row degrees in
  // `degrees`. Requires rows() > 0 and count > 0.
  void SearchBatch(std::vector<PcamWord>& words, const double* queries,
                   std::size_t count, std::vector<PcamSearchOutcome>& outcomes,
                   std::vector<double>& degrees);

  // True when every cell's search-line channel is a pure gain: Search()
  // is then a deterministic function of (snapshot, query), which is what
  // lets PcamTable replay a repeated identical query without re-running
  // the evaluation.
  bool stateless_channel() const { return stateless_channel_; }

  // Telemetry accounting for a replayed search (PcamTable memoized an
  // identical stateless probe): the modelled hardware still drove the
  // whole array, so the counters advance exactly as Search() would.
  void NoteReplaySearch() {
    telemetry_.searches.Inc();
    telemetry_.rows_scanned.Inc(rows_);
  }

  // Attaches telemetry counters (searches, rows_scanned, recompiles —
  // the last counts dirty-row snapshot refreshes). Unbound handles are
  // no-ops; telemetry never alters results or energy.
  void BindTelemetry(telemetry::SearchEngineCounters counters) {
    telemetry_ = counters;
  }

 private:
  // Column-major snapshot of one field across all rows: index = row.
  struct FieldColumn {
    std::vector<double> m1, m2, m3, m4;  // effective thresholds
    std::vector<double> sa, sb;          // skirt slopes
    std::vector<double> ia, ib;          // precomputed skirt intercepts
    std::vector<double> pmin, pmax;      // output rails
    std::vector<double> g_sum;           // G_lo + G_hi per cell [S]
  };

  void Refresh(const std::vector<PcamWord>& words);
  void RefreshRow(const std::vector<PcamWord>& words, std::size_t row);
  void RefreshBankMeta();
  std::size_t ShardCount() const;

  // Transfer function of cell (row, field) at line voltage `v`;
  // bit-compatible with PcamCell::Evaluate on the effective params.
  double EvalCell(const FieldColumn& c, std::size_t row, double v) const;

  // Stateless-channel fast path: whole-column passes, optionally sharded.
  void SearchStateless(const double* query, std::vector<double>& degrees,
                       PcamSearchOutcome& out);
  // Banked stateless path: per-bank skip test, driven banks swept with
  // the same column kernels in the same field order (bit-identical
  // degrees), energy summed over driven banks only.
  void SearchStatelessBanked(const double* query,
                             std::vector<double>& degrees,
                             PcamSearchOutcome& out);
  // Stateful-channel path: row-major walk preserving legacy noise order.
  void SearchStateful(std::vector<PcamWord>& words, const double* query,
                      std::vector<double>& degrees, PcamSearchOutcome& out);

  std::size_t field_count_;
  PcamSearchConfig config_;
  double read_time_s_;
  double line_gain_;
  bool stateless_channel_;

  std::size_t rows_ = 0;
  std::vector<FieldColumn> columns_;     // one per field
  std::vector<double> field_g_total_;    // per-field sum of g_sum
  std::vector<std::uint8_t> dirty_;      // per-row
  // Dirty rows in invalidation order (deduped via dirty_), so a refresh
  // after a single reprogram touches one row instead of scanning every
  // per-row flag; all_dirty_ (aging, first build) falls back to the scan.
  std::vector<std::size_t> dirty_rows_;
  bool all_dirty_ = false;
  bool any_dirty_ = false;

  // Banked pre-selection metadata, rebuilt on refresh. Indexed
  // [bank * field_count + field] except bank_nonneg_ (per bank).
  std::vector<double> bank_m1_min_;      // min effective m1 over bank rows
  std::vector<double> bank_m4_max_;      // max effective m4 over bank rows
  std::vector<std::uint8_t> bank_zero_ok_;  // every pmin in bank exactly 0
  std::vector<double> bank_g_;           // per-bank per-field G sums [S]
  std::vector<std::uint8_t> bank_nonneg_;   // no negative pmin in bank
  std::size_t last_driven_banks_ = 0;

  // Scratch reused across calls (never shrinks).
  std::vector<double> line_v_;           // per-field line voltages
  std::vector<double> batch_in_, batch_line_, batch_deg_;
  std::vector<std::size_t> shard_best_;
  std::vector<double> shard_degree_;

  telemetry::SearchEngineCounters telemetry_;
};

}  // namespace analognf::core
