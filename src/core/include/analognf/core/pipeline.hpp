// Multi-stage pCAM match pipeline (Fig. 4b, Fig. 6).
//
// "For multistage match-action process, multiple pCAM cells can be
// combined in series to obtain the product of deterministic and
// probabilistic matches at the output." Each stage owns one hardware
// pCAM cell and consumes one input feature; the pipeline combines stage
// outputs — product by default, with alternative fuzzy combiners for the
// ablation benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analognf/core/pcam_hardware.hpp"

namespace analognf::core {

enum class CombineMode {
  kProduct,        // the paper's series composition
  kMin,            // fuzzy-AND alternative
  kArithmeticMean, // linear blending
  kGeometricMean,  // scale-free product
};

std::string ToString(CombineMode mode);

// One pipeline stage: a labelled transfer function.
struct StageConfig {
  std::string label;   // e.g. "sojourn_time", "d/dt(sojourn_time)"
  PcamParams params;
};

class PcamPipeline {
 public:
  struct Result {
    double combined = 0.0;
    std::vector<double> stage_outputs;
    double energy_j = 0.0;
  };

  PcamPipeline(const std::vector<StageConfig>& stages,
               const HardwarePcamConfig& hardware,
               CombineMode mode = CombineMode::kProduct);

  // Evaluates the pipeline: inputs.size() must equal stage_count().
  Result Evaluate(const std::vector<double>& inputs);

  // Allocation-free variant: writes into `result`, reusing its
  // stage_outputs capacity. Per-packet callers (the AQM data path) use
  // this with a long-lived scratch Result.
  void Evaluate(const std::vector<double>& inputs, Result& result);

  // Reprograms one stage (the paper's update_pCAM(id, parameter[1:8])).
  void ProgramStage(std::size_t index, const PcamParams& params);

  std::size_t stage_count() const { return cells_.size(); }
  const StageConfig& stage(std::size_t index) const {
    return stages_.at(index);
  }
  CombineMode mode() const { return mode_; }

  HardwarePcamCell& cell(std::size_t index) { return cells_.at(index); }
  const HardwarePcamCell& cell(std::size_t index) const {
    return cells_.at(index);
  }

  double ConsumedEnergyJ() const { return consumed_energy_j_; }
  std::uint64_t evaluations() const { return evaluations_; }

 private:
  std::vector<StageConfig> stages_;
  std::vector<HardwarePcamCell> cells_;
  CombineMode mode_;
  // Channel statelessness is fixed at construction (ChannelParams never
  // change); caching the conjunction lets Evaluate() pick the inline
  // per-cell fast path without a per-call scan.
  bool all_stateless_ = false;
  double consumed_energy_j_ = 0.0;
  std::uint64_t evaluations_ = 0;
};

}  // namespace analognf::core
