// Action memory: the "memristor-based storage" blocks of Fig. 5.
//
// Sec. 5: the analog table's output "is the raw analog voltage, and it
// can be used directly (like PDP for AQM) or indirectly by fetching the
// stored actions related to the given output". This module provides the
// indirect path: typed actions stored in memristor cells, fetched either
// by id or by binding analog-output ranges to actions (so a pCAM result
// selects an action without any digital comparison chain).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analognf/core/pcam_cell.hpp"
#include "analognf/device/memristor.hpp"

namespace analognf::core {

enum class ActionType : std::uint8_t {
  kForward,      // send to forward_port
  kDrop,
  kSetPriority,  // rewrite packet priority to `priority`
  kMarkEcn,      // set CE
  kUpdatePcam,   // reprogram pipeline stage `pcam_stage` with pcam_update
};

std::string ToString(ActionType type);

struct Action {
  ActionType type = ActionType::kDrop;
  std::uint32_t forward_port = 0;
  std::uint8_t priority = 0;
  std::size_t pcam_stage = 0;
  PcamParams pcam_update{};
};

class ActionMemory {
 public:
  struct Config {
    device::MemristorParams device = device::MemristorParams::NbSrTiO3();
    // Cells used to hold one action (multi-level encoding of the action
    // word); determines the per-fetch read energy.
    std::size_t cells_per_action = 16;
    double read_voltage_v = 0.2;
    std::uint64_t seed = 0xac710;

    void Validate() const;  // throws std::invalid_argument
  };

  // Default-configured memory (Nb:SrTiO3 devices, 16 cells/action).
  ActionMemory();
  explicit ActionMemory(Config config);

  // Stores an action; returns its id.
  std::uint32_t Store(const Action& action);
  std::size_t size() const { return actions_.size(); }

  // Fetches by id (counts a memristor read). Throws std::out_of_range.
  const Action& Fetch(std::uint32_t id);

  // Binds the analog-output interval [lo, hi) to an action id, so a
  // pCAM result can be resolved to an action directly. Intervals may
  // not overlap. The id must exist.
  void BindRange(double lo, double hi, std::uint32_t id);

  // Resolves an analog output to its bound action (counting the read);
  // nullopt when no interval covers the value.
  std::optional<Action> FetchByOutput(double analog_output);

  double ConsumedEnergyJ() const { return consumed_energy_j_; }
  std::uint64_t fetches() const { return fetches_; }

 private:
  void ChargeRead();

  struct Binding {
    double lo;
    double hi;
    std::uint32_t id;
  };

  Config config_;
  std::vector<Action> actions_;
  // One representative storage cell per stored action; the energy model
  // scales its read by cells_per_action.
  std::vector<device::Memristor> cells_;
  std::vector<Binding> bindings_;
  double consumed_energy_j_ = 0.0;
  std::uint64_t fetches_ = 0;
  analognf::RandomStream rng_;
};

}  // namespace analognf::core
