// Non-linear analog match functions (the paper's future work, Sec. 8:
// "modeling of non-linear match functions in the data plane").
//
// The trapezoid of Fig. 4a is one realisable transfer shape; analog CAM
// circuits can also produce bell (Gaussian) and saturating (sigmoid)
// responses, and compositions of cells can approximate arbitrary
// responses. This module provides:
//
//   * a MatchFunction interface unifying all transfer shapes,
//   * Gaussian / sigmoid / programmable piecewise-linear shapes,
//   * a least-squares compiler (FitWeights / ResponseApproximator) that
//     maps a desired response curve onto a weighted bank of analog basis
//     cells — the "specify the I/O response and let the controller map
//     it" workflow of RQ3 generalised beyond the trapezoid.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analognf/core/pcam_cell.hpp"

namespace analognf::core {

// A single-input analog transfer function.
class MatchFunction {
 public:
  virtual ~MatchFunction() = default;
  virtual double Evaluate(double input_v) const = 0;
  virtual std::string name() const = 0;
};

// The Fig. 4a trapezoid as a MatchFunction.
class TrapezoidFunction final : public MatchFunction {
 public:
  explicit TrapezoidFunction(PcamParams params) : cell_(params) {}
  double Evaluate(double input_v) const override {
    return cell_.Evaluate(input_v);
  }
  std::string name() const override { return "trapezoid"; }

 private:
  PcamCell cell_;
};

// Bell response: pmin + (pmax - pmin) * exp(-(v - center)^2 / (2 sigma^2)).
// The analog-CAM literature realises this with a pair of opposing
// transistor-memristor branches.
class GaussianFunction final : public MatchFunction {
 public:
  // sigma > 0, pmin < pmax.
  GaussianFunction(double center_v, double sigma_v, double pmax = 1.0,
                   double pmin = 0.0);
  double Evaluate(double input_v) const override;
  std::string name() const override { return "gaussian"; }
  double center() const { return center_v_; }
  double sigma() const { return sigma_v_; }

 private:
  double center_v_;
  double sigma_v_;
  double pmax_;
  double pmin_;
};

// Saturating response: pmin + (pmax - pmin) / (1 + exp(-k (v - center))).
// k may be negative for a falling threshold.
class SigmoidFunction final : public MatchFunction {
 public:
  SigmoidFunction(double center_v, double steepness_per_v,
                  double pmax = 1.0, double pmin = 0.0);
  double Evaluate(double input_v) const override;
  std::string name() const override { return "sigmoid"; }

 private:
  double center_v_;
  double steepness_per_v_;
  double pmax_;
  double pmin_;
};

// Fully programmable shape: linear interpolation through sorted
// (voltage, output) breakpoints; clamps outside the span.
class PiecewiseLinearFunction final : public MatchFunction {
 public:
  struct Point {
    double input_v;
    double output;
  };

  // Requires >= 2 points with strictly increasing input_v.
  explicit PiecewiseLinearFunction(std::vector<Point> points);
  double Evaluate(double input_v) const override;
  std::string name() const override { return "piecewise-linear"; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

// A weighted bank of basis cells: output(v) = sum_k w_k * basis_k(v).
// Physically: the cells share the search line and their output currents
// sum on a common sense line scaled by programmable gains.
class ResponseApproximator {
 public:
  explicit ResponseApproximator(
      std::vector<std::unique_ptr<MatchFunction>> basis);

  std::size_t basis_size() const { return basis_.size(); }
  const std::vector<double>& weights() const { return weights_; }

  // Least-squares fit of the weights to samples of a target response
  // (ridge-regularised normal equations; lambda >= 0). Returns the RMS
  // error of the fit over the provided samples.
  double Fit(const std::vector<double>& inputs_v,
             const std::vector<double>& targets, double ridge_lambda = 1e-9);

  // Evaluates the weighted bank.
  double Evaluate(double input_v) const;

 private:
  std::vector<std::unique_ptr<MatchFunction>> basis_;
  std::vector<double> weights_;
};

// Convenience: a bank of `count` Gaussian cells with centers spread
// evenly over [lo_v, hi_v] and sigma matched to the spacing.
ResponseApproximator MakeGaussianBank(std::size_t count, double lo_v,
                                      double hi_v);

}  // namespace analognf::core
