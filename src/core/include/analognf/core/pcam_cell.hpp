// The pCAM cell: the paper's core abstraction (Fig. 4a).
//
// A probabilistic content-addressable memory cell maps an analog input
// voltage to an analog match output through a programmable five-region
// piecewise-linear transfer function:
//
//     output
//     pmax  -|          ________
//            |         /        '.
//            |        / .      .  '.
//     pmin  -|_______/  .      .    '.______
//            +------M1--M2-----M3----M4----->  input
//
//   input <= M1 or >= M4 : deterministic mismatch (pmin)
//   M2 <= input <= M3    : deterministic match (pmax)
//   M1 < input < M2      : probabilistic match, slope Sa
//   M3 < input < M4      : probabilistic match, slope Sb
//
// The eight programmable parameters (M1..M4, Sa, Sb, pmax, pmin) are
// exactly the paper's prog_pCAM() arguments, and Evaluate() implements
// the paper's pCAM() pseudocode verbatim (with the output clamped to
// [pmin, pmax], which is what the physical output rails do when a
// programmed slope over- or under-shoots).
#pragma once

#include <algorithm>
#include <string>

namespace analognf::core {

// Which of the five regions an input fell in.
enum class MatchRegion {
  kMismatchLow,   // input <= M1
  kProbableRising,  // M1 < input < M2
  kMatch,         // M2 <= input <= M3
  kProbableFalling,  // M3 < input < M4
  kMismatchHigh,  // input >= M4
};

std::string ToString(MatchRegion region);

// Severity rank used when combining per-cell regions into a word-level
// verdict: a deterministic mismatch (2) dominates a probabilistic skirt
// (1), which dominates a deterministic match (0). A multi-field word
// reports the worst region across its cells — one hard-mismatching field
// makes the whole row a mismatch regardless of what later fields say.
int RegionSeverity(MatchRegion region);

// The eight prog_pCAM() parameters.
struct PcamParams {
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  double sa = 0.0;    // rising-edge slope [output units per volt]
  double sb = 0.0;    // falling-edge slope (negative for a trapezoid)
  double pmax = 1.0;  // deterministic-match output rail
  double pmin = 0.0;  // deterministic-mismatch output rail

  // Invariants: m1 < m2 <= m3 < m4 and 0 <= pmin < pmax.
  // Throws std::invalid_argument when violated.
  void Validate() const;

  // The continuity-preserving trapezoid: slopes chosen so the
  // probabilistic edges meet the rails exactly at M1/M2/M3/M4
  // (Sa = (pmax-pmin)/(M2-M1), Sb = (pmin-pmax)/(M4-M3), the values the
  // paper's intercept terms are derived for).
  static PcamParams MakeTrapezoid(double m1, double m2, double m3,
                                  double m4, double pmax = 1.0,
                                  double pmin = 0.0);

  // A symmetric match band of half-width `tolerance` around `center`
  // with probabilistic skirts of width `skirt` on both sides.
  static PcamParams MakeBand(double center, double tolerance, double skirt,
                             double pmax = 1.0, double pmin = 0.0);
};

// Ideal (noise-free, infinitely precise) pCAM cell. The hardware-backed
// variant in pcam_hardware.hpp adds device quantisation and read energy.
class PcamCell {
 public:
  explicit PcamCell(PcamParams params);

  // The paper's pCAM(input, output) function. Inline: this is the
  // innermost loop of every analog search, and the call overhead from a
  // separate TU measurably dominates the arithmetic.
  double Evaluate(double input_v) const {
    const PcamParams& p = params_;
    double output;
    // Verbatim structure of the paper's pCAM() pseudocode (Sec. 5).
    if (input_v <= p.m1 || input_v >= p.m4) {
      output = p.pmin;
    } else if (input_v > p.m3) {
      output =
          p.sb * input_v + (p.m4 * p.pmax - p.m3 * p.pmin) / (p.m4 - p.m3);
    } else if (input_v < p.m2) {
      output =
          p.sa * input_v + (p.m2 * p.pmin - p.m1 * p.pmax) / (p.m2 - p.m1);
    } else {
      output = p.pmax;
    }
    // Physical output rails clip programmed slopes that over/undershoot.
    return std::clamp(output, p.pmin, p.pmax);
  }

  // Region classification of an input (diagnostics and tests).
  MatchRegion RegionOf(double input_v) const {
    const PcamParams& p = params_;
    if (input_v <= p.m1) return MatchRegion::kMismatchLow;
    if (input_v < p.m2) return MatchRegion::kProbableRising;
    if (input_v <= p.m3) return MatchRegion::kMatch;
    if (input_v < p.m4) return MatchRegion::kProbableFalling;
    return MatchRegion::kMismatchHigh;
  }

  // Reprogramming (the paper's update_pCAM action). Validates.
  void Program(const PcamParams& params);

  const PcamParams& params() const { return params_; }

 private:
  PcamParams params_;
};

}  // namespace analognf::core
