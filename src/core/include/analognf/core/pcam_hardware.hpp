// Hardware-backed pCAM cell: the ideal transfer function of pcam_cell.hpp
// realised on memristor devices.
//
// Physical mapping (following the analog-CAM circuit literature the paper
// builds on [30, 40]): the deterministic match window [M2, M3] is stored
// as the states of two memristors — a low-bound and a high-bound device —
// while the probabilistic skirt widths (M1..M2 and M3..M4) and the output
// rails pmax/pmin are set by the sense amplifier's programmable gain.
// Consequences modelled here:
//
//   * Quantisation: a device offers a finite ladder of reliable states,
//     so the programmed M2/M3 snap to the nearest rung (effective_params
//     exposes the snapped function; RQ2's precision discussion).
//   * Read energy: every search drives the input voltage across both
//     devices, dissipating V^2 (G_lo + G_hi) t_read — the quantity the
//     Sec. 6 energy analysis measures on the Nb:SrTiO3 dataset.
//   * Signal integrity: the search line passes through an AnalogChannel
//     (line loss / interference / AWGN) before reaching the cell.
//   * Programming cost: reprogramming thresholds consumes pulse energy,
//     accounted separately (the controller pays it, not the data path).
#pragma once

#include <cstdint>

#include "analognf/analog/noise.hpp"
#include "analognf/analog/signal.hpp"
#include "analognf/core/pcam_cell.hpp"
#include "analognf/device/memristor.hpp"
#include "analognf/device/quantizer.hpp"

namespace analognf::core {

// Construction-time configuration of a hardware cell.
struct HardwarePcamConfig {
  device::MemristorParams device = device::MemristorParams::NbSrTiO3();
  // Reliable programmable states per device.
  std::size_t state_levels = 64;
  // The voltage span thresholds live in (DAC output range feeding the
  // search lines). Thresholds outside it clamp.
  analog::VoltageRange input_range{-2.0, 4.0};
  // Search-line signal integrity.
  analog::ChannelParams channel = analog::ChannelParams::Ideal();
  // Per-cell device-to-device variation (applied at construction).
  bool apply_device_variation = false;
  device::DeviceVariation variation{};
  std::uint64_t seed = 0x9cab;

  void Validate() const;  // throws std::invalid_argument
};

// Output of one hardware evaluation.
struct PcamEvalResult {
  double output = 0.0;
  double energy_j = 0.0;     // search energy dissipated in the devices
  MatchRegion region = MatchRegion::kMismatchLow;
};

class HardwarePcamCell {
 public:
  // Programs the cell to approximate `target`. Thresholds M2/M3 are
  // quantised onto device states; M1/M4 keep the programmed skirt
  // widths relative to the snapped M2/M3.
  HardwarePcamCell(const PcamParams& target, HardwarePcamConfig config);

  // One search: transmit the input over the (possibly noisy) channel,
  // evaluate the snapped transfer function, dissipate read energy.
  PcamEvalResult Evaluate(double input_v);

  // True when the search-line channel is a pure per-sample gain: no RNG
  // draws, no crosstalk phase state. EvaluateStateless() is then exactly
  // Evaluate() with the channel call inlined away.
  bool stateless() const { return channel_.params().IsStateless(); }

  // Hot-path Evaluate() for stateless channels. Same arithmetic in the
  // same order as Evaluate() (line_v = input * gain is precisely what
  // AnalogChannel::Transmit computes when IsStateless()), and the same
  // searches_/search_energy_j_ accounting — results are bit-identical.
  // Callers must check stateless() first.
  PcamEvalResult EvaluateStateless(double input_v) {
    const double line_v = input_v * channel_.params().line_gain;
    PcamEvalResult result;
    result.energy_j =
        line_v * line_v * conductance_sum_s_ * config_.device.read_time_s;
    result.output = effective_.Evaluate(line_v);
    result.region = effective_.RegionOf(line_v);
    search_energy_j_ += result.energy_j;
    ++searches_;
    return result;
  }

  // Reprogram (update_pCAM). Accumulates programming energy.
  void Program(const PcamParams& target);

  // Ages the cell by `dt_s` of wall time: the threshold devices relax
  // per their retention model and the realised transfer function shifts
  // accordingly. A controller counters this with periodic Program()
  // refreshes. No-op for ideal-retention devices.
  void Age(double dt_s);

  // The transfer function actually realised after quantisation.
  const PcamParams& effective_params() const { return effective_.params(); }
  // What the controller asked for.
  const PcamParams& target_params() const { return target_; }

  // Search energy for a given line voltage with the current states.
  double SearchEnergyJ(double input_v) const;

  // Combined conductance of both threshold devices, G_lo + G_hi. Cached
  // at (re)programming/aging time so the per-search energy term is a
  // multiply instead of two exponentials; the search-engine snapshot
  // reads it straight into its structure-of-arrays layout.
  double ConductanceSumS() const { return conductance_sum_s_; }

  // The cell's search-line channel. The search engine drives it directly
  // so that engine searches consume exactly the noise stream per-cell
  // Evaluate() calls would have.
  analog::AnalogChannel& channel() { return channel_; }

  // Cumulative energies since construction.
  double ConsumedSearchEnergyJ() const { return search_energy_j_; }
  double ConsumedProgrammingEnergyJ() const { return program_energy_j_; }
  std::uint64_t searches() const { return searches_; }

  const device::Memristor& low_device() const { return low_; }
  const device::Memristor& high_device() const { return high_; }

 private:
  // Maps a threshold voltage onto a device state and back, returning the
  // snapped voltage actually stored.
  double SnapThreshold(double threshold_v, device::Memristor& dev);
  void Reprogram(const PcamParams& target);

  HardwarePcamConfig config_;
  device::StateQuantizer quantizer_;
  device::Memristor low_;    // stores M2 (low bound of the match window)
  device::Memristor high_;   // stores M3 (high bound)
  PcamParams target_;
  PcamCell effective_;
  analog::AnalogChannel channel_;
  double conductance_sum_s_ = 0.0;
  double search_energy_j_ = 0.0;
  double program_energy_j_ = 0.0;
  std::uint64_t searches_ = 0;
};

}  // namespace analognf::core
