#include "analognf/core/action_memory.hpp"

#include <stdexcept>

namespace analognf::core {

std::string ToString(ActionType type) {
  switch (type) {
    case ActionType::kForward:
      return "forward";
    case ActionType::kDrop:
      return "drop";
    case ActionType::kSetPriority:
      return "set-priority";
    case ActionType::kMarkEcn:
      return "mark-ecn";
    case ActionType::kUpdatePcam:
      return "update-pcam";
  }
  return "unknown";
}

void ActionMemory::Config::Validate() const {
  device.Validate();
  if (cells_per_action == 0) {
    throw std::invalid_argument("ActionMemory: zero cells per action");
  }
  if (!(read_voltage_v > 0.0)) {
    throw std::invalid_argument("ActionMemory: read voltage <= 0");
  }
}

ActionMemory::ActionMemory() : ActionMemory(Config()) {}

ActionMemory::ActionMemory(Config config)
    : config_([&] {
        config.Validate();
        return config;
      }()),
      rng_(config_.seed) {}

std::uint32_t ActionMemory::Store(const Action& action) {
  if (action.type == ActionType::kUpdatePcam) {
    action.pcam_update.Validate();
  }
  actions_.push_back(action);
  // The stored word occupies cells programmed to mid-range analog
  // levels; the exact state encodes the action bits, and for the energy
  // model a representative level suffices.
  device::Memristor cell(config_.device,
                         0.3 + 0.4 * rng_.NextUniform());
  cells_.push_back(cell);
  return static_cast<std::uint32_t>(actions_.size() - 1);
}

void ActionMemory::ChargeRead() {
  ++fetches_;
}

const Action& ActionMemory::Fetch(std::uint32_t id) {
  if (id >= actions_.size()) {
    throw std::out_of_range("ActionMemory::Fetch: unknown action id");
  }
  consumed_energy_j_ +=
      static_cast<double>(config_.cells_per_action) *
      cells_[id].ReadEnergyJ(config_.read_voltage_v);
  ChargeRead();
  return actions_[id];
}

void ActionMemory::BindRange(double lo, double hi, std::uint32_t id) {
  if (!(lo < hi)) {
    throw std::invalid_argument("ActionMemory::BindRange: require lo < hi");
  }
  if (id >= actions_.size()) {
    throw std::out_of_range("ActionMemory::BindRange: unknown action id");
  }
  for (const Binding& b : bindings_) {
    if (lo < b.hi && b.lo < hi) {
      throw std::invalid_argument(
          "ActionMemory::BindRange: overlapping interval");
    }
  }
  bindings_.push_back({lo, hi, id});
}

std::optional<Action> ActionMemory::FetchByOutput(double analog_output) {
  for (const Binding& b : bindings_) {
    if (analog_output >= b.lo && analog_output < b.hi) {
      return Fetch(b.id);
    }
  }
  return std::nullopt;
}

}  // namespace analognf::core
