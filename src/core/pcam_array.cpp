#include "analognf/core/pcam_array.hpp"

#include <chrono>
#include <stdexcept>

namespace analognf::core {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

PcamWord::PcamWord(const std::vector<PcamParams>& fields,
                   const HardwarePcamConfig& config) {
  if (fields.empty()) {
    throw std::invalid_argument("PcamWord: a word needs at least one field");
  }
  cells_.reserve(fields.size());
  HardwarePcamConfig cell_config = config;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    // Distinct seed per cell so variation/noise streams are independent.
    cell_config.seed = config.seed + 0x1000003 * (i + 1);
    cells_.emplace_back(fields[i], cell_config);
  }
}

PcamEvalResult PcamWord::Evaluate(const std::vector<double>& inputs) {
  if (inputs.size() != cells_.size()) {
    throw std::invalid_argument("PcamWord::Evaluate: input arity mismatch");
  }
  PcamEvalResult combined;
  combined.output = 1.0;
  combined.region = MatchRegion::kMatch;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const PcamEvalResult r = cells_[i].Evaluate(inputs[i]);
    combined.output *= r.output;
    combined.energy_j += r.energy_j;
    // The word's region is the worst cell region (first-worst wins on
    // equal severity): a deterministic mismatch in any field outranks
    // skirt hits, which outrank matches.
    if (RegionSeverity(r.region) > RegionSeverity(combined.region)) {
      combined.region = r.region;
    }
  }
  return combined;
}

void PcamWord::ProgramField(std::size_t index, const PcamParams& params) {
  cells_.at(index).Program(params);
}

void PcamWord::Age(double dt_s) {
  for (HardwarePcamCell& cell : cells_) cell.Age(dt_s);
}

PcamTable::PcamTable(std::size_t field_count, HardwarePcamConfig config,
                     PcamSearchConfig search_config)
    : field_count_(field_count),
      config_(config),
      engine_(field_count, config_, search_config) {
  if (field_count == 0) {
    throw std::invalid_argument("PcamTable: zero field count");
  }
  config_.Validate();
}

std::size_t PcamTable::Insert(Row row) {
  if (row.fields.size() != field_count_) {
    throw std::invalid_argument("PcamTable::Insert: field arity mismatch");
  }
  HardwarePcamConfig word_config = config_;
  word_config.seed = config_.seed + 0x9e3779b9ULL * next_seed_salt_++;
  words_.emplace_back(row.fields, word_config);
  rows_.push_back(std::move(row));
  engine_.AppendRow();
  delta_.Note(TableDeltaOp::kInsert, rows_.size() - 1);
  replay_ok_ = false;
  return rows_.size() - 1;
}

void PcamTable::Commit() {
  if (!engine_.NeedsRefresh()) {
    delta_.Clear();
    return;
  }
  const std::uint64_t t0 = NowNs();
  // Only the staged (dirty) rows refresh; whether that counts as a
  // delta commit or a full recompile is pure accounting. Structural
  // mutations (Age) and first-build commits touch every row.
  const std::size_t touched = delta_.touched().size();
  const bool was_delta = !delta_.structural() && touched < words_.size();
  engine_.CommitRows(words_);
  const std::uint64_t elapsed = NowNs() - t0;
  ++commit_stats_.commits;
  commit_stats_.last_commit_ns = elapsed;
  commit_stats_.last_was_delta = was_delta;
  if (was_delta) {
    ++commit_stats_.delta_commits;
    commit_stats_.delta_rows += touched;
    commit_telemetry_.delta_rows.Inc(touched);
  } else {
    ++commit_stats_.full_recompiles;
    commit_telemetry_.full_recompiles.Inc();
  }
  commit_telemetry_.commit_ns.Inc(elapsed);
  delta_.Clear();
}

bool PcamTable::NeedsCommit() const { return engine_.NeedsRefresh(); }

void PcamTable::CheckArity(std::size_t got) const {
  if (got != field_count_) {
    throw std::invalid_argument("PcamTable::Search: input arity mismatch");
  }
}

void PcamTable::RequireCommitted() const {
  if (NeedsCommit()) {
    throw std::logic_error(
        "PcamTable: searched with uncommitted mutations — call Commit()");
  }
}

PcamTableResult PcamTable::MakeResult(
    const PcamSearchOutcome& outcome) const {
  PcamTableResult result;
  result.row_index = outcome.best_row;
  result.action = rows_[outcome.best_row].action;
  result.match_degree = outcome.best_degree;
  result.energy_j = outcome.energy_j;
  return result;
}

std::optional<PcamTableResult> PcamTable::Search(
    const std::vector<double>& inputs) {
  CheckArity(inputs.size());
  RequireCommitted();
  if (words_.empty()) {
    last_degrees_.clear();
    return std::nullopt;
  }
  if (replay_ok_ && inputs == last_query_) {
    // Bitwise-identical repeat of the previous stateless query: the
    // degrees in last_degrees_ and the cached outcome are exactly what
    // the engine would recompute. The modelled array still performs the
    // search, so energy and telemetry advance as a real probe would.
    engine_.NoteReplaySearch();
    consumed_energy_j_ += last_outcome_.energy_j;
    return MakeResult(last_outcome_);
  }
  const PcamSearchOutcome outcome =
      engine_.Search(words_, inputs.data(), last_degrees_);
  consumed_energy_j_ += outcome.energy_j;
  if (engine_.stateless_channel()) {
    // Search() just refreshed any dirty rows, so the snapshot is clean
    // until the next mutation (which invalidates the memo).
    replay_ok_ = true;
    last_query_.assign(inputs.begin(), inputs.end());
    last_outcome_ = outcome;
  }
  return MakeResult(outcome);
}

std::vector<PcamTableResult> PcamTable::SearchBatchFlat(
    const std::vector<double>& queries_flat) {
  if (field_count_ == 0 || queries_flat.size() % field_count_ != 0) {
    throw std::invalid_argument(
        "PcamTable::SearchBatchFlat: size must be a multiple of "
        "field_count");
  }
  std::vector<PcamTableResult> results;
  SearchBatchFlatInto(queries_flat.data(),
                      queries_flat.size() / field_count_, results);
  return results;
}

void PcamTable::SearchBatchFlatInto(const double* queries_flat,
                                    std::size_t query_count,
                                    std::vector<PcamTableResult>& results) {
  RequireCommitted();
  results.clear();
  if (query_count == 0) return;
  if (words_.empty()) {
    last_degrees_.clear();
    return;
  }
  replay_ok_ = false;  // overwrites last_degrees_ with the final query's
  engine_.SearchBatch(words_, queries_flat, query_count, batch_outcomes_,
                      last_degrees_);
  results.reserve(query_count);
  for (const PcamSearchOutcome& outcome : batch_outcomes_) {
    consumed_energy_j_ += outcome.energy_j;
    results.push_back(MakeResult(outcome));
  }
}

std::vector<PcamTableResult> PcamTable::SearchBatch(
    const std::vector<std::vector<double>>& queries) {
  batch_queries_.clear();
  batch_queries_.reserve(queries.size() * field_count_);
  for (const std::vector<double>& q : queries) {
    CheckArity(q.size());
    batch_queries_.insert(batch_queries_.end(), q.begin(), q.end());
  }
  return SearchBatchFlat(batch_queries_);
}

std::optional<PcamTableResult> PcamTable::PickByMass(
    const PcamTableResult& best, double unit_draw, double total) const {
  double draw = unit_draw * total;
  for (std::size_t i = 0; i < last_degrees_.size(); ++i) {
    draw -= last_degrees_[i];
    if (draw <= 0.0) {
      PcamTableResult result;
      result.row_index = i;
      result.action = rows_[i].action;
      result.match_degree = last_degrees_[i];
      result.energy_j = best.energy_j;
      return result;
    }
  }
  return best;  // numerical tail: fall back to the arg-max row
}

std::optional<PcamTableResult> PcamTable::SampleByDegree(
    const std::vector<double>& inputs, analognf::RandomStream& rng) {
  auto best = Search(inputs);
  if (!best.has_value()) return std::nullopt;
  double total = 0.0;
  for (double d : last_degrees_) total += d;
  // All-zero degrees: bail out before consuming an RNG draw, so the
  // caller's stream stays aligned with the pre-engine implementation.
  if (total <= 0.0) return std::nullopt;
  return PickByMass(*best, rng.NextUniform(), total);
}

std::optional<PcamTableResult> PcamTable::SampleWithDraw(
    const std::vector<double>& inputs, double unit_draw) {
  auto best = Search(inputs);
  if (!best.has_value()) return std::nullopt;
  double total = 0.0;
  for (double d : last_degrees_) total += d;
  if (total <= 0.0) return std::nullopt;
  return PickByMass(*best, unit_draw, total);
}

void PcamTable::ProgramField(std::size_t row, std::size_t field,
                             const PcamParams& params) {
  words_.at(row).ProgramField(field, params);
  rows_.at(row).fields.at(field) = params;
  engine_.InvalidateRow(row);
  delta_.Note(TableDeltaOp::kPatch, row);
  replay_ok_ = false;
}

void PcamTable::Age(double dt_s) {
  for (PcamWord& word : words_) word.Age(dt_s);
  engine_.InvalidateAll();
  delta_.NoteStructural();
  replay_ok_ = false;
}

void PcamTable::BindTelemetry(telemetry::MetricsRegistry& registry,
                              const std::string& prefix) {
  engine_.BindTelemetry(
      telemetry::MakeSearchEngineCounters(registry, prefix));
  commit_telemetry_ = telemetry::MakeTableCommitCounters(registry);
}

}  // namespace analognf::core
