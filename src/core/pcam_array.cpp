#include "analognf/core/pcam_array.hpp"

#include <stdexcept>

namespace analognf::core {

PcamWord::PcamWord(const std::vector<PcamParams>& fields,
                   const HardwarePcamConfig& config) {
  if (fields.empty()) {
    throw std::invalid_argument("PcamWord: a word needs at least one field");
  }
  cells_.reserve(fields.size());
  HardwarePcamConfig cell_config = config;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    // Distinct seed per cell so variation/noise streams are independent.
    cell_config.seed = config.seed + 0x1000003 * (i + 1);
    cells_.emplace_back(fields[i], cell_config);
  }
}

PcamEvalResult PcamWord::Evaluate(const std::vector<double>& inputs) {
  if (inputs.size() != cells_.size()) {
    throw std::invalid_argument("PcamWord::Evaluate: input arity mismatch");
  }
  PcamEvalResult combined;
  combined.output = 1.0;
  combined.region = MatchRegion::kMatch;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const PcamEvalResult r = cells_[i].Evaluate(inputs[i]);
    combined.output *= r.output;
    combined.energy_j += r.energy_j;
    // The word's region is the "worst" cell region: a single mismatch
    // field makes the row a mismatch.
    if (r.region != MatchRegion::kMatch) combined.region = r.region;
  }
  return combined;
}

void PcamWord::ProgramField(std::size_t index, const PcamParams& params) {
  cells_.at(index).Program(params);
}

PcamTable::PcamTable(std::size_t field_count, HardwarePcamConfig config)
    : field_count_(field_count), config_(config) {
  if (field_count == 0) {
    throw std::invalid_argument("PcamTable: zero field count");
  }
  config_.Validate();
}

std::size_t PcamTable::Insert(Row row) {
  if (row.fields.size() != field_count_) {
    throw std::invalid_argument("PcamTable::Insert: field arity mismatch");
  }
  HardwarePcamConfig word_config = config_;
  word_config.seed = config_.seed + 0x9e3779b9ULL * next_seed_salt_++;
  words_.emplace_back(row.fields, word_config);
  rows_.push_back(std::move(row));
  return rows_.size() - 1;
}

std::optional<PcamTableResult> PcamTable::Search(
    const std::vector<double>& inputs) {
  if (inputs.size() != field_count_) {
    throw std::invalid_argument("PcamTable::Search: input arity mismatch");
  }
  last_degrees_.assign(words_.size(), 0.0);
  if (words_.empty()) return std::nullopt;

  double total_energy = 0.0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const PcamEvalResult r = words_[i].Evaluate(inputs);
    last_degrees_[i] = r.output;
    total_energy += r.energy_j;
    if (r.output > last_degrees_[best]) best = i;
  }
  consumed_energy_j_ += total_energy;

  PcamTableResult result;
  result.row_index = best;
  result.action = rows_[best].action;
  result.match_degree = last_degrees_[best];
  result.energy_j = total_energy;
  return result;
}

std::optional<PcamTableResult> PcamTable::SampleByDegree(
    const std::vector<double>& inputs, analognf::RandomStream& rng) {
  auto best = Search(inputs);
  if (!best.has_value()) return std::nullopt;

  double total = 0.0;
  for (double d : last_degrees_) total += d;
  if (total <= 0.0) return std::nullopt;

  double draw = rng.NextUniform() * total;
  for (std::size_t i = 0; i < last_degrees_.size(); ++i) {
    draw -= last_degrees_[i];
    if (draw <= 0.0) {
      PcamTableResult result;
      result.row_index = i;
      result.action = rows_[i].action;
      result.match_degree = last_degrees_[i];
      result.energy_j = best->energy_j;
      return result;
    }
  }
  return best;  // numerical tail: fall back to the arg-max row
}

void PcamTable::ProgramField(std::size_t row, std::size_t field,
                             const PcamParams& params) {
  words_.at(row).ProgramField(field, params);
  rows_.at(row).fields.at(field) = params;
}

}  // namespace analognf::core
