#include "analognf/core/nonlinear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace analognf::core {

GaussianFunction::GaussianFunction(double center_v, double sigma_v,
                                   double pmax, double pmin)
    : center_v_(center_v), sigma_v_(sigma_v), pmax_(pmax), pmin_(pmin) {
  if (!(sigma_v > 0.0)) {
    throw std::invalid_argument("GaussianFunction: sigma <= 0");
  }
  if (!(pmin < pmax)) {
    throw std::invalid_argument("GaussianFunction: pmin >= pmax");
  }
}

double GaussianFunction::Evaluate(double input_v) const {
  const double z = (input_v - center_v_) / sigma_v_;
  return pmin_ + (pmax_ - pmin_) * std::exp(-0.5 * z * z);
}

SigmoidFunction::SigmoidFunction(double center_v, double steepness_per_v,
                                 double pmax, double pmin)
    : center_v_(center_v),
      steepness_per_v_(steepness_per_v),
      pmax_(pmax),
      pmin_(pmin) {
  if (steepness_per_v == 0.0) {
    throw std::invalid_argument("SigmoidFunction: zero steepness");
  }
  if (!(pmin < pmax)) {
    throw std::invalid_argument("SigmoidFunction: pmin >= pmax");
  }
}

double SigmoidFunction::Evaluate(double input_v) const {
  const double z = steepness_per_v_ * (input_v - center_v_);
  return pmin_ + (pmax_ - pmin_) / (1.0 + std::exp(-z));
}

PiecewiseLinearFunction::PiecewiseLinearFunction(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument(
        "PiecewiseLinearFunction: need at least two points");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (!(points_[i].input_v > points_[i - 1].input_v)) {
      throw std::invalid_argument(
          "PiecewiseLinearFunction: inputs must be strictly increasing");
    }
  }
}

double PiecewiseLinearFunction::Evaluate(double input_v) const {
  if (input_v <= points_.front().input_v) return points_.front().output;
  if (input_v >= points_.back().input_v) return points_.back().output;
  // Binary search for the segment containing input_v.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), input_v,
      [](double v, const Point& p) { return v < p.input_v; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double t = (input_v - lo.input_v) / (hi.input_v - lo.input_v);
  return lo.output + t * (hi.output - lo.output);
}

ResponseApproximator::ResponseApproximator(
    std::vector<std::unique_ptr<MatchFunction>> basis)
    : basis_(std::move(basis)), weights_(basis_.size(), 0.0) {
  if (basis_.empty()) {
    throw std::invalid_argument("ResponseApproximator: empty basis");
  }
  for (const auto& b : basis_) {
    if (b == nullptr) {
      throw std::invalid_argument("ResponseApproximator: null basis cell");
    }
  }
}

double ResponseApproximator::Fit(const std::vector<double>& inputs_v,
                                 const std::vector<double>& targets,
                                 double ridge_lambda) {
  if (inputs_v.size() != targets.size() || inputs_v.empty()) {
    throw std::invalid_argument(
        "ResponseApproximator::Fit: sample arity mismatch or empty");
  }
  if (ridge_lambda < 0.0) {
    throw std::invalid_argument("ResponseApproximator::Fit: lambda < 0");
  }
  const std::size_t k = basis_.size();
  const std::size_t n = inputs_v.size();

  // Design matrix Phi (n x k).
  std::vector<double> phi(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      phi[i * k + j] = basis_[j]->Evaluate(inputs_v[i]);
    }
  }

  // Normal equations A w = b with A = Phi^T Phi + lambda I.
  std::vector<double> a(k * k, 0.0);
  std::vector<double> b(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < k; ++r) {
      b[r] += phi[i * k + r] * targets[i];
      for (std::size_t c = 0; c < k; ++c) {
        a[r * k + c] += phi[i * k + r] * phi[i * k + c];
      }
    }
  }
  for (std::size_t d = 0; d < k; ++d) a[d * k + d] += ridge_lambda;

  // Gaussian elimination with partial pivoting (k is small).
  std::vector<double> w = b;
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < k; ++row) {
      if (std::fabs(a[row * k + col]) > std::fabs(a[pivot * k + col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot * k + col]) < 1e-12) {
      throw std::runtime_error(
          "ResponseApproximator::Fit: singular normal matrix; increase "
          "ridge_lambda or reduce basis size");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < k; ++c) {
        std::swap(a[col * k + c], a[pivot * k + c]);
      }
      std::swap(w[col], w[pivot]);
    }
    for (std::size_t row = col + 1; row < k; ++row) {
      const double factor = a[row * k + col] / a[col * k + col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < k; ++c) {
        a[row * k + c] -= factor * a[col * k + c];
      }
      w[row] -= factor * w[col];
    }
  }
  for (std::size_t col = k; col-- > 0;) {
    for (std::size_t c = col + 1; c < k; ++c) {
      w[col] -= a[col * k + c] * w[c];
    }
    w[col] /= a[col * k + col];
  }
  weights_ = w;

  // Fit quality.
  double sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double out = 0.0;
    for (std::size_t j = 0; j < k; ++j) out += weights_[j] * phi[i * k + j];
    const double diff = out - targets[i];
    sse += diff * diff;
  }
  return std::sqrt(sse / static_cast<double>(n));
}

double ResponseApproximator::Evaluate(double input_v) const {
  double out = 0.0;
  for (std::size_t j = 0; j < basis_.size(); ++j) {
    out += weights_[j] * basis_[j]->Evaluate(input_v);
  }
  return out;
}

ResponseApproximator MakeGaussianBank(std::size_t count, double lo_v,
                                      double hi_v) {
  if (count < 1 || !(hi_v > lo_v)) {
    throw std::invalid_argument("MakeGaussianBank: bad configuration");
  }
  std::vector<std::unique_ptr<MatchFunction>> basis;
  const double spacing =
      count == 1 ? (hi_v - lo_v) : (hi_v - lo_v) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    const double center = lo_v + spacing * static_cast<double>(i);
    basis.push_back(
        std::make_unique<GaussianFunction>(center, spacing * 0.7));
  }
  return ResponseApproximator(std::move(basis));
}

}  // namespace analognf::core
