#include "analognf/core/pcam_cell.hpp"

#include <algorithm>
#include <stdexcept>

namespace analognf::core {

std::string ToString(MatchRegion region) {
  switch (region) {
    case MatchRegion::kMismatchLow:
      return "mismatch-low";
    case MatchRegion::kProbableRising:
      return "probable-rising";
    case MatchRegion::kMatch:
      return "match";
    case MatchRegion::kProbableFalling:
      return "probable-falling";
    case MatchRegion::kMismatchHigh:
      return "mismatch-high";
  }
  return "unknown";
}

int RegionSeverity(MatchRegion region) {
  switch (region) {
    case MatchRegion::kMatch:
      return 0;
    case MatchRegion::kProbableRising:
    case MatchRegion::kProbableFalling:
      return 1;
    case MatchRegion::kMismatchLow:
    case MatchRegion::kMismatchHigh:
      return 2;
  }
  return 2;
}

void PcamParams::Validate() const {
  if (!(m1 < m2) || !(m2 <= m3) || !(m3 < m4)) {
    throw std::invalid_argument(
        "PcamParams: require M1 < M2 <= M3 < M4");
  }
  if (!(pmin >= 0.0) || !(pmin < pmax)) {
    throw std::invalid_argument("PcamParams: require 0 <= pmin < pmax");
  }
}

PcamParams PcamParams::MakeTrapezoid(double m1, double m2, double m3,
                                     double m4, double pmax, double pmin) {
  PcamParams p;
  p.m1 = m1;
  p.m2 = m2;
  p.m3 = m3;
  p.m4 = m4;
  p.pmax = pmax;
  p.pmin = pmin;
  p.sa = (pmax - pmin) / (m2 - m1);
  p.sb = (pmin - pmax) / (m4 - m3);
  p.Validate();
  return p;
}

PcamParams PcamParams::MakeBand(double center, double tolerance,
                                double skirt, double pmax, double pmin) {
  if (!(tolerance >= 0.0) || !(skirt > 0.0)) {
    throw std::invalid_argument(
        "PcamParams::MakeBand: require tolerance >= 0 and skirt > 0");
  }
  return MakeTrapezoid(center - tolerance - skirt, center - tolerance,
                       center + tolerance, center + tolerance + skirt,
                       pmax, pmin);
}

PcamCell::PcamCell(PcamParams params) : params_(params) {
  params_.Validate();
}

void PcamCell::Program(const PcamParams& params) {
  params.Validate();
  params_ = params;
}

}  // namespace analognf::core
