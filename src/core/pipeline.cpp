#include "analognf/core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace analognf::core {

std::string ToString(CombineMode mode) {
  switch (mode) {
    case CombineMode::kProduct:
      return "product";
    case CombineMode::kMin:
      return "min";
    case CombineMode::kArithmeticMean:
      return "mean";
    case CombineMode::kGeometricMean:
      return "geomean";
  }
  return "unknown";
}

PcamPipeline::PcamPipeline(const std::vector<StageConfig>& stages,
                           const HardwarePcamConfig& hardware,
                           CombineMode mode)
    : stages_(stages), mode_(mode) {
  if (stages.empty()) {
    throw std::invalid_argument("PcamPipeline: no stages");
  }
  cells_.reserve(stages.size());
  HardwarePcamConfig cell_config = hardware;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    cell_config.seed = hardware.seed + 0x51a9e * (i + 1);
    cells_.emplace_back(stages[i].params, cell_config);
  }
  all_stateless_ = true;
  for (const HardwarePcamCell& cell : cells_) {
    all_stateless_ = all_stateless_ && cell.stateless();
  }
}

PcamPipeline::Result PcamPipeline::Evaluate(
    const std::vector<double>& inputs) {
  Result result;
  Evaluate(inputs, result);
  return result;
}

void PcamPipeline::Evaluate(const std::vector<double>& inputs,
                            Result& result) {
  if (inputs.size() != cells_.size()) {
    throw std::invalid_argument("PcamPipeline::Evaluate: arity mismatch");
  }
  result.combined = 0.0;
  result.energy_j = 0.0;
  result.stage_outputs.resize(cells_.size());
  if (all_stateless_) {
    // All channels are pure gains: the inline EvaluateStateless is
    // bit-identical to Evaluate and skips the cross-TU channel call.
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const PcamEvalResult r = cells_[i].EvaluateStateless(inputs[i]);
      result.stage_outputs[i] = r.output;
      result.energy_j += r.energy_j;
    }
  } else {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const PcamEvalResult r = cells_[i].Evaluate(inputs[i]);
      result.stage_outputs[i] = r.output;
      result.energy_j += r.energy_j;
    }
  }

  switch (mode_) {
    case CombineMode::kProduct: {
      double product = 1.0;
      for (double o : result.stage_outputs) product *= o;
      result.combined = product;
      break;
    }
    case CombineMode::kMin: {
      result.combined = *std::min_element(result.stage_outputs.begin(),
                                          result.stage_outputs.end());
      break;
    }
    case CombineMode::kArithmeticMean: {
      double sum = 0.0;
      for (double o : result.stage_outputs) sum += o;
      result.combined = sum / static_cast<double>(result.stage_outputs.size());
      break;
    }
    case CombineMode::kGeometricMean: {
      double product = 1.0;
      for (double o : result.stage_outputs) product *= std::max(o, 0.0);
      result.combined = std::pow(
          product, 1.0 / static_cast<double>(result.stage_outputs.size()));
      break;
    }
  }

  consumed_energy_j_ += result.energy_j;
  ++evaluations_;
}

void PcamPipeline::ProgramStage(std::size_t index,
                                const PcamParams& params) {
  cells_.at(index).Program(params);
  stages_.at(index).params = params;
}

}  // namespace analognf::core
