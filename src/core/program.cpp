#include "analognf/core/program.hpp"

#include <stdexcept>

namespace analognf::core {
namespace {

std::vector<StageConfig> ToStages(const AnalogTableSpec& spec) {
  std::vector<StageConfig> stages;
  stages.reserve(spec.read.size());
  for (const AnalogFieldSpec& field : spec.read) {
    stages.push_back({field.name, field.program});
  }
  return stages;
}

}  // namespace

void AnalogTableSpec::Validate() const {
  if (name.empty()) {
    throw std::invalid_argument("AnalogTableSpec: empty table name");
  }
  if (read.empty()) {
    throw std::invalid_argument("AnalogTableSpec: empty read section");
  }
  for (const AnalogFieldSpec& field : read) {
    if (field.name.empty()) {
      throw std::invalid_argument("AnalogTableSpec: unnamed read field");
    }
    field.program.Validate();
  }
}

AnalogMatchActionTable::AnalogMatchActionTable(AnalogTableSpec spec,
                                               HardwarePcamConfig hardware)
    : spec_([&] {
        spec.Validate();
        return std::move(spec);
      }()),
      pipeline_(ToStages(spec_), hardware, spec_.combine) {}

AnalogMatchActionTable::Output AnalogMatchActionTable::Apply(
    const std::vector<double>& features) {
  Output out;
  Apply(features, out);
  return out;
}

void AnalogMatchActionTable::Apply(const std::vector<double>& features,
                                   Output& out) {
  pipeline_.Evaluate(features, apply_scratch_);
  out.value = apply_scratch_.combined;
  out.per_field.assign(apply_scratch_.stage_outputs.begin(),
                       apply_scratch_.stage_outputs.end());
  out.energy_j = apply_scratch_.energy_j;
}

void AnalogMatchActionTable::UpdatePcam(std::size_t id,
                                        const PcamParams& parameters) {
  pipeline_.ProgramStage(id, parameters);
  spec_.read.at(id).program = parameters;
}

void AnalogMatchActionTable::UpdatePcam(const std::string& field_name,
                                        const PcamParams& parameters) {
  const auto index = FieldIndex(field_name);
  if (!index.has_value()) {
    throw std::invalid_argument(
        "AnalogMatchActionTable::UpdatePcam: unknown field " + field_name);
  }
  UpdatePcam(*index, parameters);
}

std::optional<std::size_t> AnalogMatchActionTable::FieldIndex(
    const std::string& name) const {
  for (std::size_t i = 0; i < spec_.read.size(); ++i) {
    if (spec_.read[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace analognf::core
