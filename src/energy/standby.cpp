#include "analognf/energy/standby.hpp"

#include <stdexcept>

namespace analognf::energy {

void StandbyModelParams::Validate() const {
  if (cmos_leakage_w_per_bit < 0.0 || memristor_leakage_w_per_bit < 0.0 ||
      cmos_reload_j_per_bit < 0.0 || memristor_reload_j_per_bit < 0.0) {
    throw std::invalid_argument("StandbyModelParams: negative parameter");
  }
}

StandbyModel::StandbyModel(StandbyModelParams params) : params_(params) {
  params_.Validate();
}

StandbyBreakdown StandbyModel::CostOf(std::uint64_t bits,
                                      double idle_s) const {
  if (idle_s < 0.0) {
    throw std::invalid_argument("StandbyModel::CostOf: negative interval");
  }
  StandbyBreakdown out;
  const auto n = static_cast<double>(bits);
  out.cmos_idle_j = params_.cmos_leakage_w_per_bit * n * idle_s;
  out.memristor_idle_j = params_.memristor_leakage_w_per_bit * n * idle_s;
  // Power-gating alternative: no leakage during the interval, but the
  // state must come back when the table wakes.
  out.cmos_power_cycle_j = params_.cmos_reload_j_per_bit * n;
  out.memristor_power_cycle_j = params_.memristor_reload_j_per_bit * n;
  return out;
}

}  // namespace analognf::energy
