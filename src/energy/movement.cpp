#include "analognf/energy/movement.hpp"

#include <stdexcept>

namespace analognf::energy {

void MovementModelParams::Validate() const {
  if (wire_energy_j_per_bit_mm < 0.0 || storage_to_compute_mm < 0.0 ||
      compute_energy_j_per_bit < 0.0 || sram_read_j_per_bit < 0.0) {
    throw std::invalid_argument("MovementModelParams: negative parameter");
  }
}

DataMovementModel::DataMovementModel(MovementModelParams params)
    : params_(params) {
  params_.Validate();
}

MovementBreakdown DataMovementModel::CostOf(std::uint64_t bits) const {
  MovementBreakdown out;
  const auto n = static_cast<double>(bits);
  // Operand in, result back: two traversals of the storage-compute wire.
  const double wire = 2.0 * params_.wire_energy_j_per_bit_mm *
                      params_.storage_to_compute_mm * n;
  const double storage = params_.sram_read_j_per_bit * n;
  out.movement_j = wire + storage;
  out.compute_j = params_.compute_energy_j_per_bit * n;
  out.total_j = out.movement_j + out.compute_j;
  out.movement_fraction =
      out.total_j > 0.0 ? out.movement_j / out.total_j : 0.0;
  return out;
}

}  // namespace analognf::energy
