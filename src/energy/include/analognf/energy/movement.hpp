// Digital data-movement energy model (Fig. 1).
//
// The paper's opening argument: digital packet processors spend "up to
// 90%" of their energy shuttling bits between separate storage and
// computation units, while memristor computation is colocalised. This
// model decomposes an n-bit digital operation into compute energy plus
// per-bit movement energy over a wire distance, so the Fig. 1 bench can
// show the breakdown and the crossover against the analog path.
#pragma once

#include <cstdint>

namespace analognf::energy {

struct MovementModelParams {
  // Energy to move one bit one millimetre on-chip [J/bit/mm].
  // ~0.1 pJ/bit/mm is the commonly cited 28-45nm on-chip interconnect
  // figure (Horowitz, ISSCC'14 keynote scale).
  double wire_energy_j_per_bit_mm = 0.1e-12;
  // Distance between the storage macro and the compute unit [mm].
  double storage_to_compute_mm = 2.0;
  // Pure computation energy per bit (ALU/comparator switching) [J/bit].
  // With the defaults above, movement (wire both ways + storage read)
  // comes to 405 fJ/bit vs 45 fJ/bit of compute: the 90/10 split of
  // Fig. 1 / Sec. 1.
  double compute_energy_j_per_bit = 45e-15;
  // SRAM read energy per bit [J/bit].
  double sram_read_j_per_bit = 5e-15;

  void Validate() const;  // throws std::invalid_argument
};

// Cost of one digital operation over `bits` bits, split by origin.
struct MovementBreakdown {
  double compute_j = 0.0;
  double movement_j = 0.0;  // wire transfer both ways + storage read
  double total_j = 0.0;
  double movement_fraction = 0.0;
};

class DataMovementModel {
 public:
  explicit DataMovementModel(MovementModelParams params = {});

  // An n-bit operand is read from storage, moved to compute, processed,
  // and the (same-width) result moved back.
  MovementBreakdown CostOf(std::uint64_t bits) const;

  const MovementModelParams& params() const { return params_; }

 private:
  MovementModelParams params_;
};

}  // namespace analognf::energy
