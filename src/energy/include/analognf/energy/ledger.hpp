// Energy accounting across the packet-processing architecture.
//
// RQ3 asks for "an elaborate study on the energy consumption of these
// computations". Every energy-consuming component (TCAM searches, pCAM
// searches, DAC conversions, SRAM reads, data movement) reports into a
// ledger keyed by category, so experiments can break a workload's budget
// down the way Fig. 1 does.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace analognf::energy {

// One category's accumulated consumption.
struct CategoryTotal {
  double energy_j = 0.0;
  std::uint64_t operations = 0;
};

class EnergyLedger {
 public:
  // Adds `energy_j` joules under `category`, counting `operations` ops.
  // energy_j must be non-negative.
  void Record(const std::string& category, double energy_j,
              std::uint64_t operations = 1);

  // Stable pointer to a category's running total, so batched hot paths
  // can accumulate per-packet contributions without the per-call string
  // lookup of Record(). The pointer stays valid until Reset(). Callers
  // must uphold the Record() precondition (non-negative energy).
  CategoryTotal* Meter(const std::string& category);

  // Total across all categories.
  double TotalJ() const;
  std::uint64_t TotalOperations() const;

  // Per-category lookup; zero-initialised total for unknown categories.
  CategoryTotal Of(const std::string& category) const;
  // Fraction of the total attributable to `category` (0 if total is 0).
  double FractionOf(const std::string& category) const;

  const std::map<std::string, CategoryTotal>& categories() const {
    return categories_;
  }

  // Folds another ledger into this one.
  void Merge(const EnergyLedger& other);
  void Reset();

 private:
  std::map<std::string, CategoryTotal> categories_;
};

// Canonical category names used across the library, so reports line up.
namespace category {
inline constexpr const char* kTcamSearch = "tcam.search";
inline constexpr const char* kPcamSearch = "pcam.search";
inline constexpr const char* kDataMovement = "digital.movement";
inline constexpr const char* kDigitalCompute = "digital.compute";
inline constexpr const char* kDacConvert = "analog.dac";
inline constexpr const char* kAdcConvert = "analog.adc";
inline constexpr const char* kProgramming = "device.programming";
inline constexpr const char* kStorageRead = "digital.storage";
}  // namespace category

}  // namespace analognf::energy
