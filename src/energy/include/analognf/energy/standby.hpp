// Standby (static) power: the non-volatility argument.
//
// Sec. 2: transistor-based TCAM "is volatile" — SRAM-style cells leak
// continuously and lose state on power-down, while memristors hold their
// state with zero standby power. This model quantifies the idle-energy
// side of the paper's comparison: a table that is powered but not
// searching still burns leakage on CMOS, and nothing on memristors
// (which can even be power-gated between packets).
#pragma once

#include <cstdint>

namespace analognf::energy {

struct StandbyModelParams {
  // CMOS leakage per stored bit [W/bit]. ~10 pW/bit is a representative
  // 32 nm SRAM/TCAM cell figure at nominal voltage and temperature.
  double cmos_leakage_w_per_bit = 10.0e-12;
  // Memristor standby draw [W/bit]: non-volatile, zero static current.
  double memristor_leakage_w_per_bit = 0.0;
  // State restore cost after a power-gate cycle [J/bit]: zero for
  // non-volatile storage; CMOS must be reloaded from backing store.
  double cmos_reload_j_per_bit = 5.0e-15;
  double memristor_reload_j_per_bit = 0.0;

  void Validate() const;  // throws std::invalid_argument
};

// Idle-interval energy comparison for a table of `bits` searchable bits.
struct StandbyBreakdown {
  double cmos_idle_j = 0.0;        // leakage over the interval
  double memristor_idle_j = 0.0;
  double cmos_power_cycle_j = 0.0;       // gate off + reload on wake
  double memristor_power_cycle_j = 0.0;  // zero: state persists
};

class StandbyModel {
 public:
  explicit StandbyModel(StandbyModelParams params = {});

  // Energy consumed holding `bits` of table state for `idle_s` seconds,
  // and the alternative of power-gating for the interval (pay reload on
  // wake instead of leakage).
  StandbyBreakdown CostOf(std::uint64_t bits, double idle_s) const;

  const StandbyModelParams& params() const { return params_; }

 private:
  StandbyModelParams params_;
};

}  // namespace analognf::energy
