// Table 1 reference registry: the published digital designs the paper
// compares pCAM against.
//
// Table 1 is a literature comparison; the numbers below are transcribed
// from the paper (latency in ns, search energy in fJ/bit) together with
// each design's computation domain (Digital/Analog) and technology
// (Transistor/Memristor). The pCAM row is *not* hardcoded — the bench
// recomputes it from the synthetic device dataset and checks it against
// the paper's 0.01 fJ/bit, 1 ns.
#pragma once

#include <string>
#include <vector>

namespace analognf::energy {

enum class Computation { kDigital, kAnalog };
enum class Technology { kTransistor, kMemristor };

struct ReferenceDesign {
  std::string key;        // citation key as printed in Table 1
  std::string description;
  Computation computation = Computation::kDigital;
  Technology technology = Technology::kTransistor;
  double latency_s = 0.0;
  // Published energy range [lo, hi] per bit per search; lo == hi for
  // single-number rows.
  double energy_lo_j_per_bit = 0.0;
  double energy_hi_j_per_bit = 0.0;
};

// The eight digital rows of Table 1, in the paper's column order.
const std::vector<ReferenceDesign>& Table1DigitalDesigns();

// Best (lowest-energy) digital design in the registry — the comparison
// point for the paper's ">= 50x more energy efficient" claim.
const ReferenceDesign& BestDigitalDesign();

std::string ToString(Computation computation);
std::string ToString(Technology technology);

}  // namespace analognf::energy
