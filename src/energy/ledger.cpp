#include "analognf/energy/ledger.hpp"

#include <stdexcept>

namespace analognf::energy {

void EnergyLedger::Record(const std::string& category, double energy_j,
                          std::uint64_t operations) {
  if (energy_j < 0.0) {
    throw std::invalid_argument("EnergyLedger::Record: negative energy");
  }
  CategoryTotal& total = categories_[category];
  total.energy_j += energy_j;
  total.operations += operations;
}

CategoryTotal* EnergyLedger::Meter(const std::string& category) {
  // std::map nodes are reference-stable across inserts, so the pointer
  // survives until Reset() clears the map.
  return &categories_[category];
}

double EnergyLedger::TotalJ() const {
  double total = 0.0;
  for (const auto& [name, cat] : categories_) total += cat.energy_j;
  return total;
}

std::uint64_t EnergyLedger::TotalOperations() const {
  std::uint64_t total = 0;
  for (const auto& [name, cat] : categories_) total += cat.operations;
  return total;
}

CategoryTotal EnergyLedger::Of(const std::string& category) const {
  auto it = categories_.find(category);
  return it == categories_.end() ? CategoryTotal{} : it->second;
}

double EnergyLedger::FractionOf(const std::string& category) const {
  const double total = TotalJ();
  if (total <= 0.0) return 0.0;
  return Of(category).energy_j / total;
}

void EnergyLedger::Merge(const EnergyLedger& other) {
  for (const auto& [name, cat] : other.categories_) {
    CategoryTotal& total = categories_[name];
    total.energy_j += cat.energy_j;
    total.operations += cat.operations;
  }
}

void EnergyLedger::Reset() { categories_.clear(); }

}  // namespace analognf::energy
