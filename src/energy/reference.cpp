#include "analognf/energy/reference.hpp"

#include <stdexcept>

namespace analognf::energy {

const std::vector<ReferenceDesign>& Table1DigitalDesigns() {
  // Latency (ns) and energy (fJ/bit) exactly as printed in Table 1.
  static const std::vector<ReferenceDesign> kDesigns = {
      {"[2]", "Arsovski'13 32nm CMOS TCAM compiler", Computation::kDigital,
       Technology::kTransistor, 1.0e-9, 0.58e-15, 0.58e-15},
      {"[19]", "Hayashi'13 250MHz 18Mb full-ternary CAM (65nm CMOS)",
       Computation::kDigital, Technology::kTransistor, 1.9e-9, 1.98e-15,
       1.98e-15},
      {"[42]", "Saleh'22 TCAmM memristor TCAM", Computation::kDigital,
       Technology::kMemristor, 1.0e-9, 1.0e-15, 16.0e-15},
      {"[33]", "Matsunaga'11 6T-2MTJ nonvolatile TCAM",
       Computation::kDigital, Technology::kMemristor, 0.29e-9, 1.04e-15,
       1.04e-15},
      {"[11]", "Gnawali'21 high-speed memristive TCAM",
       Computation::kDigital, Technology::kMemristor, 0.18e-9, 1.2e-15,
       1.2e-15},
      {"[4]", "Bontupalli'18 memristor intrusion detection",
       Computation::kDigital, Technology::kMemristor, 1.0e-9, 2.15e-15,
       2.15e-15},
      {"[62]", "Zheng'16 RRAM TCAM for pattern search",
       Computation::kDigital, Technology::kMemristor, 2.3e-9, 3.0e-15,
       3.0e-15},
      {"[59]", "Xu'09 STT-MRAM CAM/TCAM", Computation::kDigital,
       Technology::kMemristor, 8.0e-9, 7.4e-15, 7.4e-15},
  };
  return kDesigns;
}

const ReferenceDesign& BestDigitalDesign() {
  const auto& designs = Table1DigitalDesigns();
  const ReferenceDesign* best = nullptr;
  for (const ReferenceDesign& d : designs) {
    if (best == nullptr ||
        d.energy_lo_j_per_bit < best->energy_lo_j_per_bit) {
      best = &d;
    }
  }
  if (best == nullptr) {
    throw std::logic_error("Table 1 registry is empty");
  }
  return *best;
}

std::string ToString(Computation computation) {
  return computation == Computation::kDigital ? "D" : "A";
}

std::string ToString(Technology technology) {
  return technology == Technology::kTransistor ? "T" : "M";
}

}  // namespace analognf::energy
