#include "analognf/arch/keys.hpp"

namespace analognf::arch {
namespace {

// Ternary encoding of a 16-bit field that may be wildcarded.
tcam::TernaryWord U16Word(std::uint16_t value, bool any) {
  std::string s;
  s.reserve(16);
  for (int i = 15; i >= 0; --i) {
    const bool bit = ((static_cast<unsigned>(value) >> i) & 1u) != 0;
    s.push_back(any ? 'X' : (bit ? '1' : '0'));
  }
  return tcam::TernaryWord::FromString(s);
}

tcam::TernaryWord U8Word(std::uint8_t value, bool any) {
  std::string s;
  s.reserve(8);
  for (int i = 7; i >= 0; --i) {
    const bool bit = ((static_cast<unsigned>(value) >> i) & 1u) != 0;
    s.push_back(any ? 'X' : (bit ? '1' : '0'));
  }
  return tcam::TernaryWord::FromString(s);
}

}  // namespace

tcam::BitKey FiveTupleKey(const net::FiveTuple& tuple) {
  tcam::BitKey key;
  FiveTupleKeyInto(tuple, key);
  return key;
}

void FiveTupleKeyInto(const net::FiveTuple& tuple, tcam::BitKey& key) {
  key.Clear();
  key.AppendU32(tuple.src_ip);
  key.AppendU32(tuple.dst_ip);
  key.AppendU16(tuple.src_port);
  key.AppendU16(tuple.dst_port);
  key.AppendU8(tuple.protocol);
}

tcam::TernaryWord BuildFirewallWord(const FirewallPattern& pattern) {
  tcam::TernaryWord word =
      tcam::TernaryWord::FromPrefix(pattern.src_ip, pattern.src_prefix_len);
  word.Append(
      tcam::TernaryWord::FromPrefix(pattern.dst_ip, pattern.dst_prefix_len));
  word.Append(U16Word(pattern.src_port, pattern.any_src_port));
  word.Append(U16Word(pattern.dst_port, pattern.any_dst_port));
  word.Append(U8Word(pattern.protocol, pattern.any_protocol));
  return word;
}

}  // namespace analognf::arch
