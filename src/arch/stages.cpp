#include "analognf/arch/stages.hpp"

#include <algorithm>
#include <stdexcept>

namespace analognf::arch {

namespace {
constexpr std::uint32_t kActionPermit = kFirewallActionPermit;
constexpr std::uint32_t kActionDeny = kFirewallActionDeny;
}  // namespace

// ----------------------------------------------------------- ParseStage

ParseStage::ParseStage(const energy::DataMovementModel* movement)
    : MatchActionStage("parse"), movement_(movement) {}

void ParseStage::Process(net::PacketBatch& batch) {
  const std::size_t n = batch.size();
  parser_.ParseBatch(batch.packets_data(), n, batch.parsed);
  energy::CategoryTotal& meter = stage_meter();
  for (std::size_t i = 0; i < n; ++i) {
    // Header extraction is a digital operation with the classic
    // storage<->compute shuttling cost; it is spent on every packet,
    // parseable or not. (The canonical ledger is charged by the traffic
    // manager; this is the per-stage attribution.) For any packet with
    // a full Eth+IPv4+L4 header this is a constant 336 bits — at the
    // default movement parameters 0.1512 nJ/packet (405 fJ/bit of wire +
    // storage movement and 45 fJ/bit of compute), which is why the parse
    // stage's energy column is flat across batch sizes and dominates the
    // pipeline: it is the digital data-movement tax the paper's analog
    // co-location argument targets, not something batching can amortise.
    const auto header_bits = static_cast<std::uint64_t>(
        8 * std::min<std::size_t>(batch.packet(i).size(), 42));
    const energy::MovementBreakdown& cost =
        header_cost_.Of(*movement_, header_bits);
    meter.energy_j += cost.compute_j;
    ++meter.operations;
    meter.energy_j += cost.movement_j;
    ++meter.operations;
    if (!batch.parsed[i].ok()) {
      batch.verdicts[i] = net::Verdict::kParseError;
      continue;
    }
    // The routing/firewall data plane is IPv4; a well-formed IPv6 packet
    // parses but has no route here.
    if (!batch.parsed[i].ipv4.has_value()) {
      batch.verdicts[i] = net::Verdict::kNoRoute;
      continue;
    }
    batch.flow_hash[i] = batch.parsed[i].Key().Hash();
    // DSCP class selector bits map onto our 3-bit priority.
    batch.priority[i] =
        static_cast<std::uint8_t>(batch.parsed[i].ipv4->dscp >> 3);
  }
}

// -------------------------------------------------------- FirewallStage

FirewallStage::FirewallStage(std::size_t key_width,
                             tcam::TcamTechnology technology)
    : MatchActionStage("firewall"),
      table_(std::make_unique<tcam::TcamTable>(key_width, technology)) {}

FirewallStage::FirewallStage(const tcam::TcamTable* shared)
    : MatchActionStage("firewall"), shared_(shared) {}

std::size_t FirewallStage::AddRule(const FirewallPattern& pattern,
                                   bool permit, std::int32_t priority) {
  if (table_ == nullptr) {
    throw std::logic_error(
        "FirewallStage::AddRule: shared-table mode — install rules through "
        "the table's owner");
  }
  tcam::TcamTable::Entry entry;
  entry.pattern = BuildFirewallWord(pattern);
  entry.action = permit ? kActionPermit : kActionDeny;
  entry.priority = priority;
  return table_->Insert(std::move(entry));
}

void FirewallStage::EraseRule(std::size_t rule_index) {
  if (table_ == nullptr) {
    throw std::logic_error(
        "FirewallStage::EraseRule: shared-table mode — erase rules through "
        "the table's owner");
  }
  table_->Erase(rule_index);
}

void FirewallStage::Process(net::PacketBatch& batch) {
  const std::size_t n = batch.size();
  eligible_.clear();
  // Reuse the per-slot BitKey allocations across batches: grow the key
  // vector to the eligible count, rebuild each key in place, then trim.
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (batch.verdicts[i] != net::Verdict::kForwarded) continue;
    if (!batch.parsed[i].ipv4.has_value()) continue;
    eligible_.push_back(i);
    if (m == keys_.size()) keys_.emplace_back();
    FiveTupleKeyInto(batch.parsed[i].Key(), keys_[m]);
    ++m;
  }
  keys_.resize(m);
  energy::CategoryTotal& meter = stage_meter();
  if (shared_ != nullptr) {
    // Concurrent-reader mode: search the published snapshot's engine
    // directly. The snapshot pins the row set AND the per-cycle energy
    // for the whole batch; the table's own accounting state is never
    // touched (it belongs to the owner's control thread).
    const auto snap = shared_->snapshot();
    snap->engine.SearchBatch(keys_.data(), keys_.size(), hits_, scratch_);
    batch.firewall_search_j = snap->search_energy_j;
    for (std::size_t j = 0; j < eligible_.size(); ++j) {
      const std::size_t i = eligible_[j];
      batch.searched_firewall[i] = 1;
      meter.energy_j += snap->search_energy_j;
      ++meter.operations;
      const auto& hit = hits_[j];
      if (hit.has_value() && hit->action == kActionDeny) {
        batch.verdicts[i] = net::Verdict::kFirewallDeny;
      }
    }
    return;
  }
  table_->SearchBatch(keys_, results_);
  const double search_j = table_->SearchEnergyJ();
  batch.firewall_search_j = search_j;
  for (std::size_t j = 0; j < eligible_.size(); ++j) {
    const std::size_t i = eligible_[j];
    batch.searched_firewall[i] = 1;
    meter.energy_j += search_j;
    ++meter.operations;
    const auto& hit = results_[j];
    if (hit.has_value() && hit->action == kActionDeny) {
      batch.verdicts[i] = net::Verdict::kFirewallDeny;
    }
  }
}

// ----------------------------------------------------------- RouteStage

RouteStage::RouteStage(tcam::TcamTechnology technology, std::size_t port_count)
    : MatchActionStage("route"),
      routes_(std::make_unique<tcam::LpmTable>(technology)),
      port_count_(port_count) {}

RouteStage::RouteStage(const tcam::LpmTable* shared, std::size_t port_count)
    : MatchActionStage("route"), shared_(shared), port_count_(port_count) {}

std::size_t RouteStage::AddRoute(std::uint32_t dst_ip, int prefix_len,
                                 std::size_t port) {
  if (routes_ == nullptr) {
    throw std::logic_error(
        "RouteStage::AddRoute: shared-table mode — install routes through "
        "the table's owner");
  }
  if (port >= port_count_) {
    throw std::invalid_argument("AddRoute: port out of range");
  }
  return routes_->AddRoute(dst_ip, prefix_len,
                           static_cast<std::uint32_t>(port));
}

void RouteStage::WithdrawRoute(std::size_t route_index) {
  if (routes_ == nullptr) {
    throw std::logic_error(
        "RouteStage::WithdrawRoute: shared-table mode — withdraw routes "
        "through the table's owner");
  }
  routes_->WithdrawRoute(route_index);
}

void RouteStage::Process(net::PacketBatch& batch) {
  const std::size_t n = batch.size();
  eligible_.clear();
  addrs_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (batch.verdicts[i] != net::Verdict::kForwarded) continue;
    if (!batch.parsed[i].ipv4.has_value()) continue;
    eligible_.push_back(i);
    addrs_.push_back(batch.parsed[i].ipv4->dst_ip);
  }
  energy::CategoryTotal& meter = stage_meter();
  if (shared_ != nullptr) {
    // Concurrent-reader mode: one acquired snapshot answers the whole
    // batch; the owner's table accounting is left alone.
    const auto snap = shared_->snapshot();
    snap->LookupBatch(addrs_.data(), addrs_.size(), hits_);
    batch.route_search_j = snap->search_energy_j;
    for (std::size_t j = 0; j < eligible_.size(); ++j) {
      const std::size_t i = eligible_[j];
      batch.searched_route[i] = 1;
      meter.energy_j += snap->search_energy_j;
      ++meter.operations;
      const auto& hit = hits_[j];
      if (hit.has_value()) {
        batch.route_port[i] = hit->action;
      } else {
        batch.verdicts[i] = net::Verdict::kNoRoute;
      }
    }
    return;
  }
  routes_->LookupBatch(addrs_.data(), addrs_.size(), results_);
  const double search_j = routes_->table().SearchEnergyJ();
  batch.route_search_j = search_j;
  for (std::size_t j = 0; j < eligible_.size(); ++j) {
    const std::size_t i = eligible_[j];
    batch.searched_route[i] = 1;
    meter.energy_j += search_j;
    ++meter.operations;
    const auto& hit = results_[j];
    if (hit.has_value()) {
      batch.route_port[i] = hit->action;
    } else {
      batch.verdicts[i] = net::Verdict::kNoRoute;
    }
  }
}

// ---------------------------------------------------- LoadBalancerStage

LoadBalancerStage::LoadBalancerStage(std::vector<std::uint32_t> ports,
                                     std::size_t port_count,
                                     cognitive::LoadBalancerConfig config)
    : MatchActionStage("load-balancer"),
      ports_([&] {
        if (ports.empty()) {
          ports.resize(port_count);
          for (std::size_t p = 0; p < port_count; ++p) {
            ports[p] = static_cast<std::uint32_t>(p);
          }
        }
        return std::move(ports);
      }()),
      balancer_(ports_.size(), config) {
  member_.assign(port_count, 0);
  for (std::uint32_t p : ports_) {
    if (p >= port_count) {
      throw std::invalid_argument("LoadBalancerStage: port out of range");
    }
    member_[p] = 1;
  }
}

void LoadBalancerStage::Process(net::PacketBatch& batch) {
  const std::size_t n = batch.size();
  energy::CategoryTotal& meter = stage_meter();
  for (std::size_t i = 0; i < n; ++i) {
    if (batch.verdicts[i] != net::Verdict::kForwarded) continue;
    const std::uint32_t port = batch.route_port[i];
    if (port >= member_.size() || member_[port] == 0) continue;
    const double before_j = balancer_.ConsumedEnergyJ();
    const auto pick = balancer_.PickForFlow(batch.flow_hash[i]);
    const double delta_j = balancer_.ConsumedEnergyJ() - before_j;
    batch.analog_commits.push_back({static_cast<std::uint32_t>(i), delta_j});
    meter.energy_j += delta_j;
    ++meter.operations;
    if (pick.has_value()) {
      batch.route_port[i] = ports_[*pick];
      // Telemetry only: the picked backend's match degree.
      batch.pcam_degrees.Fold(balancer_.last_degrees()[*pick]);
    }
  }
}

// ---------------------------------------------------- TrafficClassStage

TrafficClassStage::TrafficClassStage(
    const std::vector<cognitive::AnalogTrafficClassifier::ClassSpec>& classes,
    core::HardwarePcamConfig hardware, double min_confidence)
    : MatchActionStage("traffic-class"),
      min_confidence_(min_confidence),
      classifier_(hardware) {
  for (const auto& spec : classes) classifier_.AddClass(spec);
  class_counts_.assign(classifier_.classes(), 0);
}

void TrafficClassStage::Process(net::PacketBatch& batch) {
  const std::size_t n = batch.size();
  // Gather the routed packets' metadata into one contiguous block. The
  // flow_hash lane computed by the parse stage is carried through — the
  // tracker hashes those keys into table buckets in one SIMD sweep.
  eligible_.clear();
  metas_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (batch.verdicts[i] != net::Verdict::kForwarded) continue;
    eligible_.push_back(i);
    net::PacketMeta meta;
    meta.arrival_time_s = batch.arrival_s[i];
    meta.size_bytes = static_cast<std::uint32_t>(batch.packet(i).size());
    meta.flow_hash = batch.flow_hash[i];
    meta.priority = batch.priority[i];
    metas_.push_back(meta);
  }
  const std::size_t m = eligible_.size();
  if (m == 0) return;
  // Flow updates happen in packet order, so two packets of one flow in
  // the same batch see each other's features exactly as sequential
  // processing would; the classifier then quantises every feature vector
  // into one flat query block and searches the pCAM array once.
  features_.resize(m);
  tracker_.ObserveBatch(metas_.data(), m, features_.data());
  classifier_.ClassifyBatchInto(features_.data(), m, min_confidence_,
                                outcomes_);
  energy::CategoryTotal& meter = stage_meter();
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t i = eligible_[j];
    const cognitive::ClassifyOutcome& out = outcomes_[j];
    batch.analog_commits.push_back(
        {static_cast<std::uint32_t>(i), out.energy_j});
    meter.energy_j += out.energy_j;
    ++meter.operations;
    if (out.class_index >= 0) {
      batch.traffic_class[i] = static_cast<std::uint32_t>(out.class_index);
      ++class_counts_[static_cast<std::size_t>(out.class_index)];
      // Telemetry only: the winning class's match confidence.
      batch.pcam_degrees.Fold(out.confidence);
    } else {
      ++unclassified_;
    }
  }
}

// -------------------------------------------------- TrafficManagerStage

TrafficManagerStage::TrafficManagerStage(
    const SwitchConfig* config, const energy::DataMovementModel* movement,
    SwitchStats* stats, energy::EnergyLedger* ledger)
    : MatchActionStage("traffic-manager"),
      config_(config),
      movement_(movement),
      stats_(stats),
      ledger_(ledger),
      compute_meter_(ledger->Meter(energy::category::kDigitalCompute)),
      movement_meter_(ledger->Meter(energy::category::kDataMovement)),
      tcam_meter_(ledger->Meter(energy::category::kTcamSearch)),
      pcam_meter_(ledger->Meter(energy::category::kPcamSearch)) {
  if (!config_->wrr_weights.empty()) {
    CompileWrrSchedule(config_->wrr_weights);
  }
  ports_.reserve(config_->port_count);
  for (std::size_t p = 0; p < config_->port_count; ++p) {
    EgressPort port;
    port.wrr_pos = wrr_initial_pos_;
    for (std::size_t sc = 0; sc < config_->service_classes; ++sc) {
      port.queues.emplace_back(config_->egress_queue);
      if (config_->enable_aqm) {
        aqm::AnalogAqmConfig aqm_config = config_->aqm;
        aqm_config.seed = config_->seed + 0xa9 * (p + 1) + 0x1d * (sc + 1);
        port.aqms.push_back(std::make_unique<aqm::AnalogAqm>(aqm_config));
      }
    }
    ports_.push_back(std::move(port));
  }
}

void TrafficManagerStage::Process(net::PacketBatch& batch) {
  const std::size_t n = batch.size();
  // Stats, canonical ledger energy, packet ids and AQM admission all
  // mutate shared state, so this loop replays them in packet order with
  // exactly the floating-point accumulation sequence of a sequential
  // one-packet pipeline; the meter pointers (resolved at construction)
  // keep the string-keyed map lookups off the per-batch path.
  energy::CategoryTotal& compute = *compute_meter_;
  energy::CategoryTotal& movement = *movement_meter_;
  energy::CategoryTotal& tcam = *tcam_meter_;
  energy::CategoryTotal& pcam = *pcam_meter_;
  // Deferred analog energy replays per packet. Each upstream stage
  // appended its commits in ascending packet order; a counting-sort
  // scatter groups them by packet index in one pass over the buffer.
  // Scattering in append order is stable — equal packet indices keep
  // append order, the per-packet stage order of a sequential pipeline —
  // and both scratch buffers reuse their capacity across batches, so
  // the merge neither compares nor allocates in steady state.
  const auto& src = batch.analog_commits;
  commits_.resize(src.size());
  if (!src.empty()) {
    commit_starts_.assign(n, 0);
    for (const auto& c : src) ++commit_starts_[c.packet];
    std::size_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t count = commit_starts_[i];
      commit_starts_[i] = running;
      running += count;
    }
    for (const auto& c : src) commits_[commit_starts_[c.packet]++] = c;
  }
  std::size_t commit_next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ++stats_->injected;
    // Header extraction: digital compute plus storage<->compute
    // shuttling, spent on every packet.
    const auto header_bits = static_cast<std::uint64_t>(
        8 * std::min<std::size_t>(batch.packet(i).size(), 42));
    const energy::MovementBreakdown& cost =
        header_cost_.Of(*movement_, header_bits);
    compute.energy_j += cost.compute_j;
    ++compute.operations;
    movement.energy_j += cost.movement_j;
    ++movement.operations;
    while (commit_next < commits_.size() && commits_[commit_next].packet == i) {
      pcam.energy_j += commits_[commit_next].energy_j;
      ++pcam.operations;
      ++commit_next;
    }
    const net::Verdict v = batch.verdicts[i];
    if (v == net::Verdict::kParseError) {
      ++stats_->parse_errors;
      continue;
    }
    if (batch.searched_firewall[i] != 0) {
      // Charged from the batch lane (the snapshot the firewall stage
      // actually searched), not the live table — the controller may be
      // mutating the table concurrently in shared-table mode.
      tcam.energy_j += batch.firewall_search_j;
      ++tcam.operations;
    }
    if (v == net::Verdict::kFirewallDeny) {
      ++stats_->firewall_denies;
      continue;
    }
    if (batch.searched_route[i] != 0) {
      tcam.energy_j += batch.route_search_j;
      ++tcam.operations;
    }
    if (v == net::Verdict::kNoRoute ||
        batch.route_port[i] == net::PacketBatch::kNoPort) {
      batch.verdicts[i] = net::Verdict::kNoRoute;
      ++stats_->no_route;
      continue;
    }
    // Custom stages may settle admission verdicts ahead of the manager.
    if (v == net::Verdict::kAqmDrop) {
      ++stats_->aqm_drops;
      continue;
    }
    if (v == net::Verdict::kQueueFull) {
      ++stats_->queue_full;
      continue;
    }
    net::PacketMeta meta;
    meta.id = next_packet_id_++;
    meta.arrival_time_s = batch.arrival_s[i];
    meta.size_bytes = static_cast<std::uint32_t>(batch.packet(i).size());
    meta.flow_hash = batch.flow_hash[i];
    meta.priority = batch.priority[i];
    const std::size_t service_class = ClassOf(meta.priority);
    batch.service_class[i] = static_cast<std::uint32_t>(service_class);
    batch.verdicts[i] =
        AdmitAndEnqueue(batch.route_port[i], service_class, meta,
                        batch.now_s(), pcam, batch.pcam_degrees);
  }
}

Verdict TrafficManagerStage::AdmitAndEnqueue(
    std::size_t port_index, std::size_t service_class,
    const net::PacketMeta& meta, double now_s, energy::CategoryTotal& pcam,
    net::PacketBatch::DegreeSummary& degrees) {
  EgressPort& port = ports_[port_index];
  net::PacketQueue& queue = port.queues[service_class];

  // --- Cognitive traffic manager: analog AQM admission. ----------------
  if (!port.aqms.empty()) {
    aqm::AnalogAqm& class_aqm = *port.aqms[service_class];
    aqm::AqmContext ctx;
    ctx.now_s = now_s;
    ctx.sojourn_s = queue.HeadSojourn(now_s);
    ctx.queue_bytes = queue.bytes();
    ctx.queue_packets = queue.packets();
    ctx.packet = meta;
    const double before_j = class_aqm.ConsumedEnergyJ();
    const bool drop = class_aqm.ShouldDropOnEnqueue(ctx);
    const double delta_j = class_aqm.ConsumedEnergyJ() - before_j;
    pcam.energy_j += delta_j;
    ++pcam.operations;
    stage_meter().energy_j += delta_j;
    ++stage_meter().operations;
    // Telemetry only: the admission decision's drop probability.
    degrees.Fold(class_aqm.LastDropProbability());
    if (drop) {
      queue.NoteAqmDrop(meta);
      ++stats_->aqm_drops;
      return Verdict::kAqmDrop;
    }
  }

  if (!queue.Enqueue(meta, now_s)) {
    ++stats_->queue_full;
    return Verdict::kQueueFull;
  }
  ++stats_->forwarded;
  return Verdict::kForwarded;
}

void TrafficManagerStage::CompileWrrSchedule(
    const std::vector<std::uint32_t>& weights) {
  wrr_schedule_.clear();
  wrr_block_start_.assign(weights.size(), 0);
  for (std::size_t c = 0; c < weights.size(); ++c) {
    wrr_block_start_[c] = wrr_schedule_.size();
    for (std::uint32_t k = 0; k < weights[c]; ++k) {
      wrr_schedule_.push_back(static_cast<std::uint32_t>(c));
    }
  }
  // The legacy credit rotation started at (class 0, credit 0): its first
  // step always rotated to class 1 % classes with a fresh budget, so the
  // compiled cursor starts at that block.
  wrr_initial_pos_ = wrr_block_start_[1 % weights.size()];
}

void TrafficManagerStage::SetWrrWeights(
    const std::vector<std::uint32_t>& weights) {
  if (weights.size() != config_->service_classes) {
    throw std::invalid_argument(
        "SetWrrWeights: weight count must equal service_classes");
  }
  for (std::uint32_t w : weights) {
    if (w == 0) {
      throw std::invalid_argument("SetWrrWeights: zero WRR weight");
    }
  }
  CompileWrrSchedule(weights);
  for (EgressPort& port : ports_) port.wrr_pos = wrr_initial_pos_;
}

std::size_t TrafficManagerStage::PickClass(EgressPort& port, double start_s) {
  auto eligible = [&](std::size_t sc) {
    const net::PacketMeta* head = port.queues[sc].Peek();
    return head != nullptr && head->arrival_time_s <= start_s;
  };
  if (config_->scheduler == SchedulerPolicy::kStrictPriority) {
    for (std::size_t sc = 0; sc < port.queues.size(); ++sc) {
      if (eligible(sc)) return sc;
    }
    return 0;  // unreachable given the caller's emptiness check
  }
  // Weighted round robin over the compiled schedule: consuming an
  // eligible slot is O(1); a class found ineligible forfeits the rest of
  // its block for this round (exactly the legacy credit semantics), so
  // the cursor jumps to the next block start — at most classes + 1 hops
  // even when every queue but one has gone idle.
  const std::size_t classes = port.queues.size();
  for (std::size_t hops = 0; hops <= classes; ++hops) {
    const std::size_t sc = wrr_schedule_[port.wrr_pos];
    if (eligible(sc)) {
      port.wrr_pos = (port.wrr_pos + 1) % wrr_schedule_.size();
      return sc;
    }
    port.wrr_pos = wrr_block_start_[(sc + 1) % classes];
  }
  return 0;  // unreachable: some class is eligible by precondition
}

std::size_t TrafficManagerStage::ClassOf(std::uint8_t priority) const {
  const std::size_t classes = config_->service_classes;
  if (classes == 1) return 0;
  // Proportional DSCP mapping: invert the 3-bit priority (0..7) so high
  // priority lands in low class index, then scale onto the class count.
  // Every class is reachable for classes <= 8, and classes == 2 keeps
  // the historical split (priority >= 4 -> class 0).
  const std::size_t inv = 7 - std::min<std::size_t>(priority, 7);
  return std::min(classes - 1, inv * classes / 8);
}

std::size_t TrafficManagerStage::DrainInto(double until_s,
                                           std::vector<Delivery>& out) {
  const std::size_t first = out.size();
  // Reserve for the worst case (every queued packet departs by until_s)
  // so the append loop below never reallocates mid-drain.
  std::size_t queued = 0;
  for (const EgressPort& port : ports_) {
    for (const net::PacketQueue& q : port.queues) queued += q.packets();
  }
  if (queued == 0) return 0;  // fast path: nothing queued anywhere
  out.reserve(first + queued);
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    EgressPort& port = ports_[p];
    for (;;) {
      // Strict-priority scheduling: the lowest class index whose head is
      // already waiting at the link's next-free instant wins; if none is
      // waiting yet, the earliest-arriving head starts the next busy
      // period.
      bool any = false;
      double earliest_arrival = 0.0;
      for (const net::PacketQueue& q : port.queues) {
        const net::PacketMeta* head = q.Peek();
        if (head == nullptr) continue;
        if (!any || head->arrival_time_s < earliest_arrival) {
          earliest_arrival = head->arrival_time_s;
        }
        any = true;
      }
      if (!any) break;  // all queues empty
      // The next service slot starts when the link frees up or the first
      // packet arrives; among heads already waiting then, the lowest
      // class index (highest priority) is served.
      const double start_s = std::max(port.next_free_s, earliest_arrival);
      const std::size_t pick = PickClass(port, start_s);
      const net::PacketMeta* head = port.queues[pick].Peek();
      const double ready_s = std::max(port.next_free_s, head->arrival_time_s);
      const double service_s = static_cast<double>(head->size_bytes) * 8.0 /
                               config_->port_rate_bps;
      const double depart_s = ready_s + service_s;
      if (depart_s > until_s) break;
      auto dequeued = port.queues[pick].Dequeue(depart_s);
      port.next_free_s = depart_s;
      Delivery d;
      d.port = p;
      d.service_class = pick;
      d.meta = dequeued->meta;
      d.departure_s = depart_s;
      d.sojourn_s = dequeued->sojourn_s;
      out.push_back(d);
      ++stats_->delivered;
    }
  }
  // Sort only what this call appended; earlier contents are untouched.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [](const Delivery& a, const Delivery& b) {
              return a.departure_s < b.departure_s;
            });
  return out.size() - first;
}

const net::PacketQueue& TrafficManagerStage::egress_queue(
    std::size_t port, std::size_t service_class) const {
  return ports_.at(port).queues.at(service_class);
}

aqm::AnalogAqm* TrafficManagerStage::port_aqm(std::size_t port,
                                              std::size_t service_class) {
  EgressPort& p = ports_.at(port);
  if (p.aqms.empty()) return nullptr;
  return p.aqms.at(service_class).get();
}

std::uint64_t TrafficManagerStage::QueuedPackets() const {
  std::uint64_t queued = 0;
  for (const EgressPort& port : ports_) {
    for (const net::PacketQueue& q : port.queues) queued += q.packets();
  }
  return queued;
}

}  // namespace analognf::arch
