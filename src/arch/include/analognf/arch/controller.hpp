// Cognitive network controller (Fig. 5, top block).
//
// "The splitting of network functions into the digital and analog
// domains requires a cognitive network controller. The controller
// programs the memristor-based pCAMs and TCAMs based upon the
// requirements of the network functions."
//
// This facade is that controller: network functions are registered with
// a precision requirement, the controller assigns each to the digital or
// analog domain (RQ2's precision-driven placement), and programs the
// switch's tables accordingly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analognf/arch/switch.hpp"

namespace analognf::arch {

// Reprograms every egress AQM of one switch for a new latency bound,
// through the same update_pCAM action the data-plane table exposes.
// Free-standing so the controller facade and the multi-port runtime's
// batch-boundary control commands (port_runtime.hpp) share one
// implementation. Must run on the thread that owns the switch's data
// plane (pCAM programming is single-writer).
void ProgramAqmTarget(CognitiveSwitch& data_plane, double target_delay_s,
                      double max_deviation_s);

// Where a network function executes.
enum class Domain { kDigital, kAnalog };

std::string ToString(Domain domain);

// A registered network function and its placement.
struct FunctionPlacement {
  std::string name;
  // Required output precision in equivalent bits. High-precision
  // functions (IP lookup, firewall) must stay digital; tolerant ones
  // (AQM, traffic analysis, load balancing) can go analog.
  unsigned required_precision_bits = 32;
  Domain domain = Domain::kDigital;
};

class CognitiveNetworkController {
 public:
  // Functions whose precision requirement is at or below this many bits
  // are placed in the analog domain. The default (10) reflects the
  // ~10-bit effective resolution of the DAC/pCAM path.
  explicit CognitiveNetworkController(CognitiveSwitch& data_plane,
                                      unsigned analog_precision_limit_bits = 10);

  // Registers a function and decides its domain. Returns the placement.
  FunctionPlacement Place(const std::string& name,
                          unsigned required_precision_bits);
  const std::vector<FunctionPlacement>& placements() const {
    return placements_;
  }

  // --- Digital-domain programming (TCAM) -------------------------------
  void InstallRoute(const std::string& dst_dotted, int prefix_len,
                    std::size_t port);
  void InstallFirewallDeny(const FirewallPattern& pattern,
                           std::int32_t priority);
  void InstallFirewallPermit(const FirewallPattern& pattern,
                             std::int32_t priority);

  // --- Analog-domain programming (pCAM, via update_pCAM) ---------------
  // Reprograms every port's AQM sojourn stage for a new latency bound.
  void ProgramAqmTarget(double target_delay_s, double max_deviation_s);

  CognitiveSwitch& data_plane() { return data_plane_; }

 private:
  CognitiveSwitch& data_plane_;
  unsigned analog_precision_limit_bits_;
  std::vector<FunctionPlacement> placements_;
};

}  // namespace analognf::arch
