// Text-based policy programming for the cognitive network controller.
//
// RQ3 asks what the programming abstractions for analog network
// functions look like. The C++ surface is core/program.hpp; this module
// adds the operator-facing layer: a line-oriented policy language the
// controller interprets, so a deployment can be described as data.
//
// Grammar (one command per line, '#' starts a comment):
//
//   place <name> precision <bits>
//       Register a network function; the controller assigns it to the
//       digital or analog domain by precision requirement (RQ2).
//   route <a.b.c.d>/<prefix> port <n>
//       Install an LPM route in the digital MAT.
//   permit|deny [src <a.b.c.d>/<p>] [dst <a.b.c.d>/<p>]
//              [sport <port>] [dport <port>] [proto <n>] priority <n>
//       Install a firewall rule (unspecified fields wildcard).
//   aqm target <float>ms deviation <float>ms
//       Reprogram every port's analog AQM latency bound (update_pCAM).
//
// Errors carry the offending line number.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "analognf/arch/controller.hpp"

namespace analognf::arch {

// Parse/apply failure, with the 1-based line number.
class PolicyError : public std::runtime_error {
 public:
  PolicyError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

class PolicyInterpreter {
 public:
  explicit PolicyInterpreter(CognitiveNetworkController& controller)
      : controller_(controller) {}

  // Applies a whole program; returns the number of commands executed.
  // Throws PolicyError on the first invalid line (earlier commands have
  // already been applied — the controller is an incremental device).
  std::size_t Apply(std::istream& program);
  std::size_t ApplyText(const std::string& program);

 private:
  void ApplyLine(const std::string& line, std::size_t line_no);

  CognitiveNetworkController& controller_;
};

}  // namespace analognf::arch
