// Match-key construction: bridges the parser's typed headers and the
// bit-level keys the digital match-action tables consume.
#pragma once

#include "analognf/net/parser.hpp"
#include "analognf/tcam/ternary.hpp"

namespace analognf::arch {

// Width of the canonical 5-tuple key:
// 32 (src ip) + 32 (dst ip) + 16 (src port) + 16 (dst port) + 8 (proto).
inline constexpr std::size_t kFiveTupleBits = 104;

// Serialises a 5-tuple into the canonical 104-bit search key.
tcam::BitKey FiveTupleKey(const net::FiveTuple& tuple);

// Same, into a caller-owned key (cleared first). Per-packet hot paths
// use this to reuse one BitKey allocation per batch slot.
void FiveTupleKeyInto(const net::FiveTuple& tuple, tcam::BitKey& key);

// Builds a 104-bit ternary firewall pattern. Any field can be wildcarded:
// prefix lengths of 0 wildcard an address entirely; `any_port`/-proto
// flags wildcard those fields.
struct FirewallPattern {
  std::uint32_t src_ip = 0;
  int src_prefix_len = 0;
  std::uint32_t dst_ip = 0;
  int dst_prefix_len = 0;
  std::uint16_t src_port = 0;
  bool any_src_port = true;
  std::uint16_t dst_port = 0;
  bool any_dst_port = true;
  std::uint8_t protocol = 0;
  bool any_protocol = true;
};

tcam::TernaryWord BuildFirewallWord(const FirewallPattern& pattern);

}  // namespace analognf::arch
