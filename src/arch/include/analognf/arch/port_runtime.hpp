// Concurrent multi-port runtime: N per-port data planes over one set of
// epoch-published table snapshots.
//
// The paper's switch has many ports fed in parallel while the cognitive
// controller keeps reprogramming tables (prog_pCAM / update_pCAM, route
// updates). This layer maps that onto threads without putting a single
// lock on the packet path:
//
//   * SharedTables (switch.hpp) — the controller-owned firewall TCAM and
//     LPM table. Mutations stage; Commit() compiles and publishes an
//     immutable snapshot RCU-style (common/snapshot.hpp).
//   * PortRuntime — one worker thread per port, draining a bounded
//     mailbox of ingress batches and control commands into a private
//     CognitiveSwitch built in shared-tables reader mode. Each batch
//     acquires the published snapshots; each port keeps its own energy
//     ledger, stats and telemetry (the worker registers a
//     ThreadPool external slot so sharded counters stay exact).
//   * SwitchGroup — the assembly: the controller thread stages and
//     commits table updates and broadcasts pCAM reprogramming commands;
//     data sources submit batches per port. Commands apply at batch
//     boundaries on the owning worker, so every switch stays
//     single-threaded internally — the concurrency lives entirely in the
//     snapshot layer, where readers always see either the old or the new
//     fully-compiled table.
//
// See docs/ARCHITECTURE.md, "Concurrency contract".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "analognf/arch/switch.hpp"
#include "analognf/common/spsc_ring.hpp"

namespace analognf::arch {

// One port's data plane: a dedicated worker thread, a bounded mailbox,
// and a private CognitiveSwitch reading the group's SharedTables.
class PortRuntime {
 public:
  // An ingress batch bound for this port. Packets are owned by the item
  // (moved in) so the submitter can retire its buffers immediately.
  struct Batch {
    std::vector<net::Packet> packets;
    double now_s = 0.0;
    // Optional steady-clock stamp set by ring producers; rides along so
    // the ring-batch hook can report enqueue-to-completion sojourn.
    std::uint64_t enqueue_ns = 0;
  };
  // A control command; runs on the worker between batches with exclusive
  // access to the port's switch.
  using Command = std::function<void(CognitiveSwitch&)>;

  // Builds the port's switch in shared-tables reader mode and starts the
  // worker. `tables` must outlive the runtime. `mailbox_depth` bounds
  // queued items; Submit blocks when full (backpressure, never drops).
  PortRuntime(SwitchConfig config, const SharedTables* tables,
              std::size_t mailbox_depth = 8);
  ~PortRuntime();

  PortRuntime(const PortRuntime&) = delete;
  PortRuntime& operator=(const PortRuntime&) = delete;

  // Enqueues an ingress batch (blocks while the mailbox is full).
  void Submit(Batch batch);
  // Enqueues a control command (same mailbox, so it applies at a batch
  // boundary, in submission order relative to batches).
  void Apply(Command command);
  // Blocks until every submitted item has fully executed.
  void WaitIdle();

  // ---- ring-fed run-to-completion mode (the src/traffic ingress) ----
  // One lock-free SPSC ring of ingress batches; the port worker is the
  // single consumer, one producer thread pushes.
  using IngressRing = analognf::SpscRing<Batch>;
  // Completion record handed to the (optional) per-batch hook, invoked
  // on the worker thread after each ring batch retires.
  struct RingBatchInfo {
    std::size_t packets = 0;
    std::uint64_t enqueue_ns = 0;  // producer stamp (0 if unset)
    std::uint64_t start_ns = 0;    // processing began (steady clock)
    std::uint64_t done_ns = 0;     // processing finished
  };
  using RingHook = std::function<void(const RingBatchInfo&)>;

  // Attaches `ring` as the worker's run-to-completion ingress: whenever
  // the mailbox is empty the worker polls the ring and processes popped
  // batches back-to-back. Mailbox items (Submit/Apply) still take
  // priority, so control commands keep applying at batch boundaries.
  // The attach itself travels the mailbox, so it also lands at a batch
  // boundary. `ring` must stay alive until DetachRing() returns.
  void AttachRing(IngressRing* ring, RingHook hook = {});
  // Detaches the current ring. Blocks until the worker has retired any
  // in-flight ring batch and will no longer touch the ring; pending
  // batches still in the ring are NOT drained (the caller owns them).
  // Callers wanting a full drain wait for ring->Empty() first — after
  // that, DetachRing() returning implies every popped batch has fully
  // executed.
  void DetachRing();

  // The port's switch. Single-threaded object: touch it only from
  // commands (which run on the worker) or after WaitIdle() with no
  // further Submit/Apply in flight.
  CognitiveSwitch& device() { return switch_; }
  const CognitiveSwitch& device() const { return switch_; }

  // The worker's registered telemetry slot (ThreadPool::CurrentSlot()
  // value on the worker); 0 until the worker has started up.
  std::size_t worker_slot() const {
    return slot_.load(std::memory_order_acquire);
  }

 private:
  struct Item {
    Batch batch;
    Command command;  // non-null = control item, batch ignored
    // Ring control: when set, the worker swaps its ring pointer/hook to
    // these values (null detaches). Takes precedence over the fields
    // above. Routed through the mailbox so the swap is a plain
    // worker-local assignment at a batch boundary — no cross-thread
    // pointer handoff to race on.
    bool ring_op = false;
    IngressRing* ring = nullptr;
    RingHook hook;
  };

  void WorkerLoop();

  CognitiveSwitch switch_;
  const std::size_t mailbox_depth_;
  std::mutex mutex_;
  std::condition_variable cv_submit_;  // worker waits: work available
  std::condition_variable cv_state_;   // submitters wait: space / idle
  std::deque<Item> mailbox_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stop_ = false;
  std::atomic<std::size_t> slot_{0};
  std::thread worker_;  // last: starts after all state is ready
};

// A multi-port switch assembly: one SharedTables control plane, one
// PortRuntime per port. The controller thread owns table mutations and
// Commit(); any thread may submit batches (one submitter per port at a
// time keeps arrival order deterministic).
class SwitchGroup {
 public:
  // `ports` port runtimes, each configured from `config` (telemetry
  // shard counts are widened to cover every worker's slot).
  SwitchGroup(std::size_t ports, SwitchConfig config);

  std::size_t ports() const { return runtimes_.size(); }

  // ------------------------------------------------ control plane
  // Stages a route / firewall rule into the shared tables (returning
  // its stable index) or withdraws one previously staged+committed. Not
  // visible to the data plane until Commit().
  std::size_t AddRoute(std::uint32_t dst_ip, int prefix_len,
                       std::size_t port);
  void WithdrawRoute(std::size_t route_index);
  std::size_t AddFirewallRule(const FirewallPattern& pattern, bool permit,
                              std::int32_t priority);
  void EraseFirewallRule(std::size_t rule_index);
  // Publishes all staged table mutations as fresh snapshots — deltas
  // applied at a batch boundary: in-flight batches keep the snapshot
  // they already acquired; later batches see the new one. Small staged
  // sets patch the published snapshots instead of recompiling them
  // (common/table_delta.hpp; see tables().firewall.commit_stats()).
  void Commit();
  // Broadcasts an analog AQM reprogram (update_pCAM) to every port,
  // applied at each port's next batch boundary.
  void ProgramAqmTarget(double target_delay_s, double max_deviation_s);

  // ------------------------------------------------ data plane
  // Enqueues a batch on `port`'s mailbox (blocks while full).
  void Submit(std::size_t port, std::vector<net::Packet> packets,
              double now_s);
  // Blocks until every port has drained its mailbox.
  void WaitIdle();

  // ------------------------------------------------ observability
  SharedTables& tables() { return tables_; }
  const SharedTables& tables() const { return tables_; }
  PortRuntime& runtime(std::size_t port) { return *runtimes_.at(port); }
  // The port's switch; see PortRuntime::device() for the threading rule.
  CognitiveSwitch& device(std::size_t port) {
    return runtimes_.at(port)->device();
  }
  // Sum of every port's SwitchStats. Call only while idle (after
  // WaitIdle with no concurrent submitters).
  SwitchStats AggregateStats() const;
  // Sum of every port's canonical ledger, in joules.
  double TotalEnergyJ() const;

 private:
  SharedTables tables_;
  std::vector<std::unique_ptr<PortRuntime>> runtimes_;
};

}  // namespace analognf::arch
