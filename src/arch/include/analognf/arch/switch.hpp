// The memristor-based cognitive packet-processing architecture (Fig. 5).
//
// Pipeline per ingress packet:
//
//   parser -> digital MATs (firewall ternary match, LPM routing — the
//   high-precision functions the paper keeps digital) -> cognitive
//   traffic manager (per-egress-port queue guarded by the pCAM analog
//   AQM) -> egress link.
//
// Both digital tables run on memristor TCAM technology (the paper's
// architecture uses memristor storage in both domains); the analog table
// is the pCAM AQM. Every component accounts energy into a shared ledger
// so the Fig. 1-style digital/analog split can be reported per workload.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analognf/aqm/analog_aqm.hpp"
#include "analognf/arch/keys.hpp"
#include "analognf/energy/ledger.hpp"
#include "analognf/energy/movement.hpp"
#include "analognf/net/packet.hpp"
#include "analognf/net/parser.hpp"
#include "analognf/net/queue.hpp"
#include "analognf/tcam/tcam.hpp"

namespace analognf::arch {

// Final disposition of an injected packet.
enum class Verdict {
  kForwarded,     // enqueued on an egress port
  kParseError,
  kFirewallDeny,
  kNoRoute,
  kAqmDrop,       // analog AQM admission drop
  kQueueFull,     // egress tail drop
};

std::string ToString(Verdict verdict);

// Egress scheduling discipline across service classes.
enum class SchedulerPolicy {
  kStrictPriority,      // class 0 always first (can starve lower classes)
  kWeightedRoundRobin,  // classes served in proportion to wrr_weights
};

// A packet delivered out of an egress port.
struct Delivery {
  std::size_t port = 0;
  std::size_t service_class = 0;
  net::PacketMeta meta;
  double departure_s = 0.0;
  double sojourn_s = 0.0;
};

struct SwitchConfig {
  std::size_t port_count = 4;
  double port_rate_bps = 100.0e6;
  net::PacketQueue::Config egress_queue{};
  // Service classes per egress port. 1 = the plain FIFO traffic
  // manager; 2 sends high-priority traffic (packet priority >= 4, i.e.
  // DSCP class >= 4) to class 0 and the rest to class 1.
  std::size_t service_classes = 1;
  SchedulerPolicy scheduler = SchedulerPolicy::kStrictPriority;
  // Per-class service quanta for kWeightedRoundRobin (size must equal
  // service_classes; ignored for strict priority).
  std::vector<std::uint32_t> wrr_weights{};
  // Technology of the digital match-action stages.
  tcam::TcamTechnology digital_technology =
      tcam::TcamTechnology::MemristorTcam();
  // Analog AQM program applied to every egress port. enable_aqm = false
  // gives the pure tail-drop traffic manager.
  bool enable_aqm = true;
  aqm::AnalogAqmConfig aqm{};
  std::uint64_t seed = 0x5317c4;

  void Validate() const;  // throws std::invalid_argument
};

// Per-verdict counters.
struct SwitchStats {
  std::uint64_t injected = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t firewall_denies = 0;
  std::uint64_t no_route = 0;
  std::uint64_t aqm_drops = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t delivered = 0;
};

class CognitiveSwitch {
 public:
  explicit CognitiveSwitch(SwitchConfig config);

  // ------------------------------------------------ control plane
  // Installs an IPv4 route (LPM) to an egress port.
  void AddRoute(std::uint32_t dst_ip, int prefix_len, std::size_t port);
  // Installs a firewall rule; higher priority wins; permit=false denies.
  void AddFirewallRule(const FirewallPattern& pattern, bool permit,
                       std::int32_t priority);

  // ------------------------------------------------ data plane
  // Runs one packet through parser -> firewall -> route -> traffic
  // manager at time `now_s` (non-decreasing across calls).
  Verdict Inject(const net::Packet& packet, double now_s);

  // Drains egress queues up to `until_s`, returning deliveries in
  // departure order per port.
  std::vector<Delivery> Drain(double until_s);

  // ------------------------------------------------ observability
  const SwitchStats& stats() const { return stats_; }
  const energy::EnergyLedger& ledger() const { return ledger_; }
  // Class 0 queue by default; pass service_class for multi-class ports.
  const net::PacketQueue& egress_queue(std::size_t port,
                                       std::size_t service_class = 0) const;
  // The AQM guarding one class queue (each class has its own instance so
  // derivative state never mixes across queues). Null when AQM disabled.
  aqm::AnalogAqm* port_aqm(std::size_t port, std::size_t service_class = 0);
  std::size_t port_count() const { return config_.port_count; }

 private:
  struct EgressPort {
    // One FIFO per service class, index 0 = highest priority; each has
    // its own AQM instance (empty vector when AQM disabled).
    std::vector<net::PacketQueue> queues;
    std::vector<std::unique_ptr<aqm::AnalogAqm>> aqms;
    double next_free_s = 0.0;
    // Weighted-round-robin rotation state.
    std::size_t wrr_class = 0;
    std::uint32_t wrr_credit = 0;
  };

  // Scheduler decision: which class the next service slot goes to,
  // among classes whose head arrived by start_s. Asserts one exists.
  std::size_t PickClass(EgressPort& port, double start_s);

  // Service class a packet maps to under the current configuration.
  std::size_t ClassOf(const net::PacketMeta& meta) const;

  Verdict Classify(const net::Packet& packet, double now_s,
                   std::size_t* out_port, net::PacketMeta* out_meta);

  SwitchConfig config_;
  net::Parser parser_;
  tcam::LpmTable routes_;
  tcam::TcamTable firewall_;
  energy::DataMovementModel movement_;
  std::vector<EgressPort> ports_;
  SwitchStats stats_;
  energy::EnergyLedger ledger_;
  std::uint64_t next_packet_id_ = 0;
};

}  // namespace analognf::arch
