// The memristor-based cognitive packet-processing architecture (Fig. 5).
//
// Pipeline per ingress packet:
//
//   parser -> digital MATs (firewall ternary match, LPM routing — the
//   high-precision functions the paper keeps digital) -> cognitive
//   traffic manager (per-egress-port queue guarded by the pCAM analog
//   AQM) -> egress link.
//
// Both digital tables run on memristor TCAM technology (the paper's
// architecture uses memristor storage in both domains); the analog table
// is the pCAM AQM. Every component accounts energy into a shared ledger
// so the Fig. 1-style digital/analog split can be reported per workload.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analognf/aqm/analog_aqm.hpp"
#include "analognf/arch/keys.hpp"
#include "analognf/energy/ledger.hpp"
#include "analognf/energy/movement.hpp"
#include "analognf/net/packet.hpp"
#include "analognf/net/parser.hpp"
#include "analognf/net/queue.hpp"
#include "analognf/tcam/tcam.hpp"

namespace analognf::arch {

// Final disposition of an injected packet.
enum class Verdict {
  kForwarded,     // enqueued on an egress port
  kParseError,
  kFirewallDeny,
  kNoRoute,
  kAqmDrop,       // analog AQM admission drop
  kQueueFull,     // egress tail drop
};

std::string ToString(Verdict verdict);

// Egress scheduling discipline across service classes.
enum class SchedulerPolicy {
  kStrictPriority,      // class 0 always first (can starve lower classes)
  kWeightedRoundRobin,  // classes served in proportion to wrr_weights
};

// A packet delivered out of an egress port.
struct Delivery {
  std::size_t port = 0;
  std::size_t service_class = 0;
  net::PacketMeta meta;
  double departure_s = 0.0;
  double sojourn_s = 0.0;
};

struct SwitchConfig {
  std::size_t port_count = 4;
  double port_rate_bps = 100.0e6;
  net::PacketQueue::Config egress_queue{};
  // Service classes per egress port. 1 = the plain FIFO traffic
  // manager. Otherwise the 3-bit packet priority (0..7, from the DSCP
  // class selector) maps proportionally onto classes, highest priority
  // to class 0: priority p lands in class (7-p)*service_classes/8
  // (clamped), so every class is reachable for any count <= 8. With 2
  // classes this is the classic split: priority >= 4 to class 0, the
  // rest to class 1.
  std::size_t service_classes = 1;
  SchedulerPolicy scheduler = SchedulerPolicy::kStrictPriority;
  // Per-class service quanta for kWeightedRoundRobin (size must equal
  // service_classes; ignored for strict priority).
  std::vector<std::uint32_t> wrr_weights{};
  // Technology of the digital match-action stages.
  tcam::TcamTechnology digital_technology =
      tcam::TcamTechnology::MemristorTcam();
  // Analog AQM program applied to every egress port. enable_aqm = false
  // gives the pure tail-drop traffic manager.
  bool enable_aqm = true;
  aqm::AnalogAqmConfig aqm{};
  std::uint64_t seed = 0x5317c4;

  void Validate() const;  // throws std::invalid_argument
};

// Per-verdict counters.
struct SwitchStats {
  std::uint64_t injected = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t firewall_denies = 0;
  std::uint64_t no_route = 0;
  std::uint64_t aqm_drops = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t delivered = 0;
};

class CognitiveSwitch {
 public:
  explicit CognitiveSwitch(SwitchConfig config);

  // ------------------------------------------------ control plane
  // Installs an IPv4 route (LPM) to an egress port.
  void AddRoute(std::uint32_t dst_ip, int prefix_len, std::size_t port);
  // Installs a firewall rule; higher priority wins; permit=false denies.
  void AddFirewallRule(const FirewallPattern& pattern, bool permit,
                       std::int32_t priority);

  // ------------------------------------------------ data plane
  // Runs one packet through parser -> firewall -> route -> traffic
  // manager at time `now_s` (non-decreasing across calls).
  Verdict Inject(const net::Packet& packet, double now_s);

  // Batched data plane: runs a whole ingress batch arriving at `now_s`
  // through the same pipeline. The stateless digital stages (parse,
  // firewall TCAM, LPM trie) fan out over the batch; AQM admission and
  // enqueueing then commit per packet in order, so verdicts, stats and
  // energy-ledger totals are bit-identical to sequential Inject() calls.
  std::vector<Verdict> InjectBatch(std::span<const net::Packet> packets,
                                   double now_s);

  // Drains egress queues up to `until_s`, returning deliveries in
  // departure order per port.
  std::vector<Delivery> Drain(double until_s);

  // Allocation-friendly drain: appends deliveries to `out` (reserving
  // from the queued-packet counts, so long drains do not repeatedly
  // reallocate), sorts only the appended region by departure time, and
  // returns the number of deliveries appended. Callers that drain in a
  // loop can reuse one buffer across calls.
  std::size_t DrainInto(double until_s, std::vector<Delivery>& out);

  // ------------------------------------------------ observability
  const SwitchStats& stats() const { return stats_; }
  const energy::EnergyLedger& ledger() const { return ledger_; }
  // Class 0 queue by default; pass service_class for multi-class ports.
  const net::PacketQueue& egress_queue(std::size_t port,
                                       std::size_t service_class = 0) const;
  // The AQM guarding one class queue (each class has its own instance so
  // derivative state never mixes across queues). Null when AQM disabled.
  aqm::AnalogAqm* port_aqm(std::size_t port, std::size_t service_class = 0);
  std::size_t port_count() const { return config_.port_count; }

 private:
  struct EgressPort {
    // One FIFO per service class, index 0 = highest priority; each has
    // its own AQM instance (empty vector when AQM disabled).
    std::vector<net::PacketQueue> queues;
    std::vector<std::unique_ptr<aqm::AnalogAqm>> aqms;
    double next_free_s = 0.0;
    // Weighted-round-robin rotation state.
    std::size_t wrr_class = 0;
    std::uint32_t wrr_credit = 0;
  };

  // Scheduler decision: which class the next service slot goes to,
  // among classes whose head arrived by start_s. Asserts one exists.
  std::size_t PickClass(EgressPort& port, double start_s);

  // Service class a packet maps to under the current configuration.
  std::size_t ClassOf(const net::PacketMeta& meta) const;

  // Analog AQM admission + egress enqueue for one routed packet; pcam
  // accumulates the AQM's search energy.
  Verdict AdmitAndEnqueue(std::size_t port_index, const net::PacketMeta& meta,
                          double now_s, energy::CategoryTotal& pcam);

  // Shared implementation behind Inject()/InjectBatch().
  void InjectBatchInto(std::span<const net::Packet> packets, double now_s,
                       std::vector<Verdict>& verdicts);

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  // Per-batch scratch, reused across calls (never shrinks).
  struct BatchScratch {
    std::vector<net::ParsedPacket> parsed;
    std::vector<net::FiveTuple> tuples;  // one per firewall key
    std::vector<tcam::BitKey> fw_keys;
    std::vector<std::optional<tcam::TcamSearchResult>> fw_results;
    std::vector<std::size_t> fw_index;  // per packet, kNpos if skipped
    std::vector<std::uint32_t> lpm_addrs;
    std::vector<std::optional<tcam::TcamSearchResult>> lpm_results;
    std::vector<std::size_t> lpm_index;  // per packet, kNpos if skipped
    std::vector<Verdict> verdicts;      // Inject() fast path
  };

  SwitchConfig config_;
  net::Parser parser_;
  tcam::LpmTable routes_;
  tcam::TcamTable firewall_;
  energy::DataMovementModel movement_;
  std::vector<EgressPort> ports_;
  SwitchStats stats_;
  energy::EnergyLedger ledger_;
  std::uint64_t next_packet_id_ = 0;
  BatchScratch scratch_;
};

}  // namespace analognf::arch
