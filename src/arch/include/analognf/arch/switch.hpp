// The memristor-based cognitive packet-processing architecture (Fig. 5),
// built as a stage graph.
//
// The data plane is an ordered chain of MatchActionStage slots over a
// net::PacketBatch (stage.hpp):
//
//   parse -> firewall TCAM -> LPM route -> [load balancer] ->
//   [traffic classifier] -> [custom stages] -> traffic manager
//
// Digital MATs (firewall, LPM — the high-precision functions the paper
// keeps digital) and analog MATs (pCAM AQM admission, load balancing,
// traffic analysis) implement the same batch-oriented contract, so the
// pipeline is composable the way Fig. 5 draws it. Every component
// accounts energy into a shared ledger so the Fig. 1-style digital/
// analog split can be reported per workload; a second, per-stage ledger
// attributes the same energy by pipeline position.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analognf/aqm/analog_aqm.hpp"
#include "analognf/arch/keys.hpp"
#include "analognf/arch/stage.hpp"
#include "analognf/cognitive/classifier.hpp"
#include "analognf/cognitive/load_balancer.hpp"
#include "analognf/energy/ledger.hpp"
#include "analognf/energy/movement.hpp"
#include "analognf/net/packet.hpp"
#include "analognf/net/packet_batch.hpp"
#include "analognf/net/queue.hpp"
#include "analognf/tcam/tcam.hpp"
#include "analognf/telemetry/telemetry.hpp"

namespace analognf::arch {

// The verdict type lives with the batch lanes in net; re-exported here
// so arch callers keep writing arch::Verdict.
using net::ToString;
using net::Verdict;

// Egress scheduling discipline across service classes.
enum class SchedulerPolicy {
  kStrictPriority,      // class 0 always first (can starve lower classes)
  kWeightedRoundRobin,  // classes served in proportion to wrr_weights
};

// A packet delivered out of an egress port.
struct Delivery {
  std::size_t port = 0;
  std::size_t service_class = 0;
  net::PacketMeta meta;
  double departure_s = 0.0;
  double sojourn_s = 0.0;
};

struct SwitchConfig {
  std::size_t port_count = 4;
  double port_rate_bps = 100.0e6;
  net::PacketQueue::Config egress_queue{};
  // Service classes per egress port. 1 = the plain FIFO traffic
  // manager. Otherwise the 3-bit packet priority (0..7, from the DSCP
  // class selector) maps proportionally onto classes, highest priority
  // to class 0: priority p lands in class (7-p)*service_classes/8
  // (clamped), so every class is reachable for any count <= 8. With 2
  // classes this is the classic split: priority >= 4 to class 0, the
  // rest to class 1.
  std::size_t service_classes = 1;
  SchedulerPolicy scheduler = SchedulerPolicy::kStrictPriority;
  // Per-class service quanta for kWeightedRoundRobin. When non-empty the
  // size must equal service_classes and every weight must be positive
  // (validated under both schedulers, so a strict-priority config with a
  // stale weight vector fails loudly instead of silently ignoring it).
  std::vector<std::uint32_t> wrr_weights{};
  // Technology of the digital match-action stages.
  tcam::TcamTechnology digital_technology =
      tcam::TcamTechnology::MemristorTcam();
  // Analog AQM program applied to every egress port. enable_aqm = false
  // gives the pure tail-drop traffic manager.
  bool enable_aqm = true;
  aqm::AnalogAqmConfig aqm{};

  // ---- cognitive analog stages (Fig. 5's "load balancing" and
  // ---- "traffic analysis" slots; both disabled by default) ----
  // ECMP-by-pCAM load balancing: a routed packet whose egress port is in
  // `lb_ports` is re-balanced across that group by analog match degree
  // against per-port load policies, flow-sticky via the flow hash.
  // Empty lb_ports = every port participates.
  bool enable_load_balancer = false;
  std::vector<std::uint32_t> lb_ports{};
  cognitive::LoadBalancerConfig load_balancer{};
  // Analog traffic analysis: one pCAM search tags each routed packet's
  // flow with a class (batch's traffic_class lane + per-class counters).
  bool enable_classifier = false;
  std::vector<cognitive::AnalogTrafficClassifier::ClassSpec>
      classifier_classes{};
  double classifier_min_confidence = 0.05;
  core::HardwarePcamConfig classifier_hardware{};

  std::uint64_t seed = 0x5317c4;

  // Telemetry for the whole data plane: stage metrics, engine counters,
  // verdict counters and the per-batch flight recorder. `enabled = false`
  // compiles the instrumentation down to unbound no-op handles (zero
  // metric writes) and skips the flight recorder entirely.
  telemetry::TelemetryConfig telemetry{};

  void Validate() const;  // throws std::invalid_argument
};

// Per-verdict counters. The per-verdict counts partition `injected`:
// forwarded + parse_errors + firewall_denies + no_route + aqm_drops +
// queue_full == injected at every quiescent point (invariant-tested).
struct SwitchStats {
  std::uint64_t injected = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t firewall_denies = 0;
  std::uint64_t no_route = 0;
  std::uint64_t aqm_drops = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t delivered = 0;
};

class ParseStage;
class FirewallStage;
class RouteStage;
class LoadBalancerStage;
class TrafficClassStage;
class TrafficManagerStage;

// Firewall TCAM action encoding shared by FirewallStage and
// SharedTables.
inline constexpr std::uint32_t kFirewallActionPermit = 1;
inline constexpr std::uint32_t kFirewallActionDeny = 0;

// Controller-owned digital match-action tables shared by every port of
// a multi-port runtime (port_runtime.hpp). The controller thread stages
// mutations (AddRoute/AddFirewallRule) and publishes them atomically
// with Commit(); each port's data plane reads the published snapshots
// concurrently and never blocks on a commit. One mutator thread at a
// time; any number of reader ports.
struct SharedTables {
  SharedTables(tcam::TcamTechnology technology, std::size_t port_count,
               tcam::TcamSearchConfig firewall_config = {},
               tcam::LpmConfig route_config = {});

  // Stage mutations; each returns the entry's stable index so the
  // controller can later withdraw/erase it. Deltas apply at the next
  // Commit().
  std::size_t AddRoute(std::uint32_t dst_ip, int prefix_len,
                       std::size_t port);
  void WithdrawRoute(std::size_t route_index);
  std::size_t AddFirewallRule(const FirewallPattern& pattern, bool permit,
                              std::int32_t priority);
  void EraseFirewallRule(std::size_t rule_index);
  bool NeedsCommit() const {
    return firewall.NeedsCommit() || routes.NeedsCommit();
  }
  // Publishes both tables' staged mutations as fresh snapshots — via
  // the delta path when the staged sets are small (table_delta.hpp).
  void Commit();

  tcam::TcamTable firewall;
  tcam::LpmTable routes;
  std::size_t port_count;
};

class CognitiveSwitch {
 public:
  explicit CognitiveSwitch(SwitchConfig config);
  // Shared-tables mode: the switch's firewall/route stages become
  // concurrent readers of `shared` (which must outlive the switch);
  // AddRoute/AddFirewallRule then throw — mutations go through the
  // SharedTables owner — and the data plane never auto-commits.
  CognitiveSwitch(SwitchConfig config, const SharedTables* shared);

  // ------------------------------------------------ control plane
  // Installs an IPv4 route (LPM) to an egress port; returns the route's
  // stable index for WithdrawRoute. Throws std::logic_error in
  // shared-tables mode.
  std::size_t AddRoute(std::uint32_t dst_ip, int prefix_len,
                       std::size_t port);
  // Stages withdrawal of a previously installed route. Throws
  // std::logic_error in shared-tables mode.
  void WithdrawRoute(std::size_t route_index);
  // Installs a firewall rule; higher priority wins; permit=false denies.
  // Returns the rule's stable index for EraseFirewallRule. Throws
  // std::logic_error in shared-tables mode.
  std::size_t AddFirewallRule(const FirewallPattern& pattern, bool permit,
                              std::int32_t priority);
  // Stages removal of a previously installed firewall rule. Throws
  // std::logic_error in shared-tables mode.
  void EraseFirewallRule(std::size_t rule_index);
  // Publishes any staged route/firewall mutations of the owned tables.
  // The data plane calls this automatically at batch entry, so the
  // classic AddRoute-then-Inject flow keeps working; explicit calls let
  // a caller pay the compile at a chosen instant. No-op in shared-tables
  // mode (the SharedTables owner commits).
  void Commit();
  // Inserts a custom stage immediately in front of the traffic manager
  // (the last stage). The stage's meter is bound in the stage ledger.
  MatchActionStage& AddStage(std::unique_ptr<MatchActionStage> stage);
  // Replaces the egress scheduler's WRR weights at a commit boundary:
  // the compiled schedule is rebuilt off the dequeue path and every
  // port's rotation restarts from the initial position. Size must equal
  // service_classes; weights must be nonzero.
  void SetWrrWeights(const std::vector<std::uint32_t>& weights);

  // ------------------------------------------------ data plane
  // Runs one packet through the stage graph at time `now_s`
  // (non-decreasing across calls). A batch of one.
  Verdict Inject(const net::Packet& packet, double now_s);

  // Batched data plane: runs a whole ingress batch arriving at `now_s`
  // through the stage graph. The stateless digital stages fan out over
  // the batch; the traffic manager then commits per packet in order, so
  // verdicts, stats and energy-ledger totals are bit-identical to
  // sequential Inject() calls.
  std::vector<Verdict> InjectBatch(std::span<const net::Packet> packets,
                                   double now_s);

  // Drains egress queues up to `until_s`, returning deliveries in
  // departure order per port.
  std::vector<Delivery> Drain(double until_s);

  // Allocation-friendly drain: appends deliveries to `out` (reserving
  // from the queued-packet counts, so long drains do not repeatedly
  // reallocate), sorts only the appended region by departure time, and
  // returns the number of deliveries appended. Callers that drain in a
  // loop can reuse one buffer across calls.
  std::size_t DrainInto(double until_s, std::vector<Delivery>& out);

  // ------------------------------------------------ observability
  const SwitchStats& stats() const { return stats_; }
  const energy::EnergyLedger& ledger() const { return ledger_; }
  // Per-stage energy attribution ("stage.<name>" categories). Sums to
  // ledger().TotalJ() — the same joules grouped by pipeline position
  // instead of by hardware category.
  const energy::EnergyLedger& stage_ledger() const { return stage_ledger_; }
  // The stage chain, in processing order (names + metrics).
  const StageGraph& graph() const { return graph_; }
  // Class 0 queue by default; pass service_class for multi-class ports.
  const net::PacketQueue& egress_queue(std::size_t port,
                                       std::size_t service_class = 0) const;
  // The AQM guarding one class queue (each class has its own instance so
  // derivative state never mixes across queues). Null when AQM disabled.
  aqm::AnalogAqm* port_aqm(std::size_t port, std::size_t service_class = 0);
  std::size_t port_count() const { return config_.port_count; }
  // The cognitive analog stages' engines (null when disabled).
  cognitive::AnalogLoadBalancer* load_balancer();
  cognitive::AnalogTrafficClassifier* classifier();
  const TrafficClassStage* classifier_stage() const { return classify_; }
  // The switch's telemetry hub: `stage.<name>.*`, `tcam.*`, `pcam.*`
  // and `switch.*` metrics plus the per-batch flight recorder.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

 private:
  // Per-verdict counter handles mirroring SwitchStats.
  struct VerdictCounters {
    telemetry::CounterHandle injected, forwarded, parse_errors,
        firewall_denies, no_route, aqm_drops, queue_full;
  };

  void BindTelemetry();
  void RecordBatchTrace(double now_s);

  SwitchConfig config_;
  const SharedTables* shared_tables_ = nullptr;
  energy::DataMovementModel movement_;
  SwitchStats stats_;
  energy::EnergyLedger ledger_;
  energy::EnergyLedger stage_ledger_;
  // Declared before the graph: stages hold handles into the registry, so
  // the registry must outlive them on destruction.
  telemetry::Telemetry telemetry_;
  VerdictCounters verdict_counters_;
  telemetry::CounterHandle batches_counter_;
  telemetry::GaugeHandle queue_depth_gauge_;
  telemetry::HistogramHandle batch_size_hist_;
  StageGraph graph_{&stage_ledger_};
  // Borrowed views into graph-owned stages (valid for the switch's
  // lifetime; the graph owns the objects).
  ParseStage* parse_ = nullptr;
  FirewallStage* firewall_ = nullptr;
  RouteStage* route_ = nullptr;
  LoadBalancerStage* lb_ = nullptr;
  TrafficClassStage* classify_ = nullptr;
  TrafficManagerStage* tm_ = nullptr;
  net::PacketBatch batch_;  // reused across calls (lanes never shrink)
};

}  // namespace analognf::arch
