// The concrete stages of the cognitive switch's pipeline (Fig. 5, left
// to right). Each implements MatchActionStage over the batch lanes:
//
//   ParseStage          packets -> parsed/flow_hash/priority lanes
//   FirewallStage       digital MAT: ternary 5-tuple match (deny verdicts)
//   RouteStage          digital MAT: LPM next hop (route_port lane)
//   LoadBalancerStage   analog MAT: pCAM ECMP re-balance of route_port
//   TrafficClassStage   analog MAT: pCAM flow classification lane
//   TrafficManagerStage ordered commit: stats, canonical ledger, packet
//                       ids, AQM admission, egress enqueue + drain
//
// Only the traffic manager touches the canonical energy ledger and the
// switch stats, and it does so in strict packet order — that is what
// keeps batch results bit-identical to a sequential per-packet pipeline
// (see stage.hpp's attribution contract).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analognf/arch/stage.hpp"
#include "analognf/arch/switch.hpp"

namespace analognf::arch {

// One-entry memo over DataMovementModel::CostOf. Header widths are
// effectively constant (8 * min(size, 42) bits is 336 for any packet
// with a full 42-byte header), so the breakdown's divide runs once per
// distinct width instead of once per packet. CostOf is pure, so the
// memo is exact.
struct CachedMovementCost {
  const energy::MovementBreakdown& Of(const energy::DataMovementModel& model,
                                      std::uint64_t bits) {
    if (bits != last_bits) {
      last_bits = bits;
      last_cost = model.CostOf(bits);
    }
    return last_cost;
  }
  std::uint64_t last_bits = ~std::uint64_t{0};
  energy::MovementBreakdown last_cost;
};

// ----------------------------------------------------------- ParseStage
// Digital front-end: header extraction over the whole batch. Settles
// kParseError / non-IPv4 kNoRoute verdicts and fills the flow_hash and
// priority lanes for routable packets.
class ParseStage final : public MatchActionStage {
 public:
  explicit ParseStage(const energy::DataMovementModel* movement);
  void Process(net::PacketBatch& batch) override;

 private:
  net::Parser parser_;
  const energy::DataMovementModel* movement_;
  CachedMovementCost header_cost_;
};

// -------------------------------------------------------- FirewallStage
// Digital MAT 1: ternary 5-tuple match (the high-precision function the
// paper keeps digital). Marks searched packets and settles deny verdicts.
//
// Two modes:
//   * owned  — the stage owns its TcamTable; rules go through AddRule
//     and the switch commits the table at batch boundaries.
//   * shared — the stage is a concurrent *reader* of a controller-owned
//     table (multi-port runtime): each batch acquires the published
//     snapshot and searches its engine with the stage's own scratch, so
//     N port threads can run against one table while the controller
//     commits. Shared mode never touches the table's accounting state.
class FirewallStage final : public MatchActionStage {
 public:
  FirewallStage(std::size_t key_width, tcam::TcamTechnology technology);
  // Shared-reader mode; `shared` must outlive the stage.
  explicit FirewallStage(const tcam::TcamTable* shared);
  // Stages a rule and returns its stable index (for EraseRule). Throws
  // std::logic_error in shared mode (rules go to the shared table's
  // owner).
  std::size_t AddRule(const FirewallPattern& pattern, bool permit,
                      std::int32_t priority);
  // Stages removal of a rule by the index AddRule returned. Throws
  // std::logic_error in shared mode.
  void EraseRule(std::size_t rule_index);
  void Process(net::PacketBatch& batch) override;
  const tcam::TcamTable& table() const {
    return shared_ != nullptr ? *shared_ : *table_;
  }
  // The owned table (null in shared mode) — for batch-boundary commits.
  tcam::TcamTable* owned_table() { return table_.get(); }
  // Binds the TCAM engine to `tcam.firewall.*` counters (owned mode
  // only; a shared table is bound by its owner).
  void BindTelemetry(telemetry::MetricsRegistry& registry) {
    if (table_ != nullptr) table_->BindTelemetry(registry, "tcam.firewall");
  }

 private:
  std::unique_ptr<tcam::TcamTable> table_;  // null in shared mode
  const tcam::TcamTable* shared_ = nullptr;
  // Batch scratch (reused, never shrinks): eligible packet indices and
  // their compacted keys/results.
  std::vector<std::size_t> eligible_;
  std::vector<tcam::BitKey> keys_;
  std::vector<std::optional<tcam::TcamSearchResult>> results_;
  // Shared-mode search state (per-stage, so per-port: never contended).
  tcam::TcamSearchScratch scratch_;
  std::vector<std::optional<tcam::TcamEngineHit>> hits_;
};

// ----------------------------------------------------------- RouteStage
// Digital MAT 2: longest-prefix IPv4 lookup for packets the firewall
// permitted. Fills the route_port lane; misses settle kNoRoute.
// Owned and shared-reader modes mirror FirewallStage's.
class RouteStage final : public MatchActionStage {
 public:
  RouteStage(tcam::TcamTechnology technology, std::size_t port_count);
  // Shared-reader mode; `shared` must outlive the stage.
  RouteStage(const tcam::LpmTable* shared, std::size_t port_count);
  // Stages a route and returns its stable index (for WithdrawRoute).
  // Throws std::logic_error in shared mode.
  std::size_t AddRoute(std::uint32_t dst_ip, int prefix_len,
                       std::size_t port);
  // Stages withdrawal of a route by the index AddRoute returned. Throws
  // std::logic_error in shared mode.
  void WithdrawRoute(std::size_t route_index);
  void Process(net::PacketBatch& batch) override;
  const tcam::LpmTable& routes() const {
    return shared_ != nullptr ? *shared_ : *routes_;
  }
  tcam::LpmTable* owned_routes() { return routes_.get(); }
  // Binds the stride-trie LPM engine to `tcam.route.*` counters (owned
  // mode only).
  void BindTelemetry(telemetry::MetricsRegistry& registry) {
    if (routes_ != nullptr) routes_->BindTelemetry(registry, "tcam.route");
  }

 private:
  std::unique_ptr<tcam::LpmTable> routes_;  // null in shared mode
  const tcam::LpmTable* shared_ = nullptr;
  std::size_t port_count_;
  std::vector<std::size_t> eligible_;
  std::vector<std::uint32_t> addrs_;
  std::vector<std::optional<tcam::TcamSearchResult>> results_;
  std::vector<std::optional<tcam::TcamEngineHit>> hits_;
};

// ---------------------------------------------------- LoadBalancerStage
// Analog MAT: ECMP-by-pCAM port selection. Routed packets whose egress
// port belongs to the balanced group are re-assigned across the group by
// analog match degree against per-port load policies, flow-sticky via
// the flow hash. Canonical pCAM energy is deferred through the batch's
// analog_commits lane and committed by the traffic manager in packet
// order (the bit-identity contract of stage.hpp).
class LoadBalancerStage final : public MatchActionStage {
 public:
  // `ports` is the balanced group (backend b of the balancer maps to
  // ports[b]); empty = all ports. `port_count` bounds the membership
  // lookup table.
  LoadBalancerStage(std::vector<std::uint32_t> ports, std::size_t port_count,
                    cognitive::LoadBalancerConfig config);
  void Process(net::PacketBatch& batch) override;
  cognitive::AnalogLoadBalancer& balancer() { return balancer_; }
  const std::vector<std::uint32_t>& ports() const { return ports_; }
  // Binds the balancer's pCAM engine to `pcam.lb.*` counters.
  void BindTelemetry(telemetry::MetricsRegistry& registry) {
    balancer_.BindTelemetry(registry, "pcam.lb");
  }

 private:
  std::vector<std::uint32_t> ports_;
  std::vector<std::uint8_t> member_;  // port -> in balanced group
  cognitive::AnalogLoadBalancer balancer_;
};

// ---------------------------------------------------- TrafficClassStage
// Analog MAT: traffic analysis. Gathers the batch's routed packets,
// updates their flows in packet order through FlowTracker::ObserveBatch
// (flow keys hashed up front on the SIMD dispatch layer), then runs one
// batched pCAM search over a flat query block; results land in the
// traffic_class lane and per-class counters. Flow updates stay in packet
// order and the default channel is stateless, so classifications are
// independent of how the caller batches arrivals; pCAM energy defers
// through analog_commits like the load balancer's. All scratch is
// per-stage and never shrinks: steady-state Process() does not allocate.
class TrafficClassStage final : public MatchActionStage {
 public:
  TrafficClassStage(
      const std::vector<cognitive::AnalogTrafficClassifier::ClassSpec>&
          classes,
      core::HardwarePcamConfig hardware, double min_confidence);
  void Process(net::PacketBatch& batch) override;
  cognitive::AnalogTrafficClassifier& classifier() { return classifier_; }
  const cognitive::FlowTracker& tracker() const { return tracker_; }
  // Packets tagged per class index, and packets no class matched.
  const std::vector<std::uint64_t>& class_counts() const {
    return class_counts_;
  }
  std::uint64_t unclassified() const { return unclassified_; }
  // Binds the classifier's pCAM engine to `pcam.classifier.*` counters.
  void BindTelemetry(telemetry::MetricsRegistry& registry) {
    classifier_.BindTelemetry(registry, "pcam.classifier");
  }

 private:
  double min_confidence_;
  cognitive::FlowTracker tracker_;
  cognitive::AnalogTrafficClassifier classifier_;
  std::vector<std::uint64_t> class_counts_;
  std::uint64_t unclassified_ = 0;
  // Batch scratch (reused, never shrinks): eligible packet indices,
  // their gathered metadata, per-flow features and classify outcomes.
  std::vector<std::size_t> eligible_;
  std::vector<net::PacketMeta> metas_;
  std::vector<cognitive::FlowFeatures> features_;
  std::vector<cognitive::ClassifyOutcome> outcomes_;
};

// -------------------------------------------------- TrafficManagerStage
// The cognitive traffic manager plus the switch's bookkeeping: replays
// the batch in strict packet order, committing stats, canonical ledger
// energy (digital compute/movement, TCAM searches of the upstream
// stages, pCAM AQM admission), packet ids, service-class mapping, AQM
// admission and egress enqueueing. Also owns the egress side: queues,
// per-class AQMs, and the drain scheduler.
class TrafficManagerStage final : public MatchActionStage {
 public:
  TrafficManagerStage(const SwitchConfig* config,
                      const energy::DataMovementModel* movement,
                      SwitchStats* stats, energy::EnergyLedger* ledger);
  void Process(net::PacketBatch& batch) override;

  // Replaces the WRR weights at a scheduling boundary: the compiled
  // schedule is rebuilt and every port's rotation restarts from the
  // initial position (the same place a freshly constructed manager
  // starts). Size must equal service_classes; weights must be nonzero.
  void SetWrrWeights(const std::vector<std::uint32_t>& weights);

  std::size_t DrainInto(double until_s, std::vector<Delivery>& out);
  const net::PacketQueue& egress_queue(std::size_t port,
                                       std::size_t service_class) const;
  aqm::AnalogAqm* port_aqm(std::size_t port, std::size_t service_class);
  // Packets currently queued across every egress port and class.
  std::uint64_t QueuedPackets() const;

 private:
  struct EgressPort {
    // One FIFO per service class, index 0 = highest priority; each has
    // its own AQM instance (empty vector when AQM disabled).
    std::vector<net::PacketQueue> queues;
    std::vector<std::unique_ptr<aqm::AnalogAqm>> aqms;
    double next_free_s = 0.0;
    // Weighted-round-robin rotation state: a cursor into the compiled
    // schedule (wrr_schedule_). One slot is one service-slot's worth of
    // credit, so a dequeue is O(1): read the slot, advance the cursor.
    std::size_t wrr_pos = 0;
  };

  // Scheduler decision: which class the next service slot goes to,
  // among classes whose head arrived by start_s. Asserts one exists.
  // WRR walks the compiled schedule: an eligible slot is consumed in
  // O(1); an ineligible class forfeits the rest of its block and the
  // cursor jumps to the next block start (at most classes+1 hops).
  std::size_t PickClass(EgressPort& port, double start_s);
  // Flattens `weights` into wrr_schedule_ / wrr_block_start_ and returns
  // the initial cursor position (the first class the legacy credit
  // rotation would have served).
  void CompileWrrSchedule(const std::vector<std::uint32_t>& weights);
  // Service class a 3-bit priority maps to under the configuration.
  std::size_t ClassOf(std::uint8_t priority) const;
  // Analog AQM admission + egress enqueue for one routed packet; pcam
  // accumulates the AQM's search energy (canonical ledger) and the AQM's
  // drop probability folds into `degrees` (telemetry only).
  Verdict AdmitAndEnqueue(std::size_t port_index, std::size_t service_class,
                          const net::PacketMeta& meta, double now_s,
                          energy::CategoryTotal& pcam,
                          net::PacketBatch::DegreeSummary& degrees);

  const SwitchConfig* config_;
  const energy::DataMovementModel* movement_;
  SwitchStats* stats_;
  energy::EnergyLedger* ledger_;
  // Canonical-ledger category meters, resolved once at construction: the
  // string-keyed map lookup (and, for category names past the SSO limit,
  // a heap-allocated temporary key) must stay off the per-batch path.
  // Meter() pointers stay valid for the ledger's lifetime — the switch
  // never exposes a mutable ledger, so it is never Reset() under us.
  energy::CategoryTotal* compute_meter_;
  energy::CategoryTotal* movement_meter_;
  energy::CategoryTotal* tcam_meter_;
  energy::CategoryTotal* pcam_meter_;
  std::vector<EgressPort> ports_;
  std::uint64_t next_packet_id_ = 0;
  // Compiled WRR schedule: class c occupies wrr_block_start_[c] ..
  // wrr_block_start_[c] + weight[c] - 1; the vector's length is the sum
  // of weights. Rebuilt only by the constructor and SetWrrWeights —
  // never on the dequeue path. Empty under strict priority with no
  // weights configured.
  std::vector<std::uint32_t> wrr_schedule_;
  std::vector<std::size_t> wrr_block_start_;
  std::size_t wrr_initial_pos_ = 0;
  // Scratch for replaying deferred analog commits in packet order
  // (counting-sort cursors + the sorted buffer; reused, never shrinks).
  std::vector<net::PacketBatch::AnalogCommit> commits_;
  std::vector<std::size_t> commit_starts_;
  CachedMovementCost header_cost_;
};

}  // namespace analognf::arch
