// The unified match-action stage contract of the Fig. 5 stage graph.
//
// Digital MATs (TCAM firewall, LPM routing), analog MATs (pCAM AQM
// admission, load balancing, traffic analysis) and the cognitive traffic
// manager all implement one interface: Process(PacketBatch&) over a
// whole ingress batch. Stages communicate only through the batch's SoA
// lanes, which is what makes them interchangeable slots in the pipeline
// — the graph is an ordered chain, and inserting a custom stage is one
// Add() call.
//
// Attribution contract:
//  * every stage owns a meter in the switch's *stage ledger*
//    ("stage.<name>") and adds the energy of the work it performs to it
//    inside Process(); across stages these meters sum to the main
//    ledger's total (the invariant test asserts it);
//  * the canonical per-category ledger (tcam.search, pcam.search,
//    digital.*) is committed by the traffic-manager stage in strict
//    packet order, so totals stay bit-identical to a sequential
//    per-packet pipeline regardless of how stages batch their work;
//  * Process() wall-clock time is accumulated by the graph runner.
//    Latency metrics are observability-only: no data-plane outcome may
//    depend on them (the determinism convention of ARCHITECTURE.md).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analognf/energy/ledger.hpp"
#include "analognf/net/packet_batch.hpp"
#include "analognf/telemetry/metrics.hpp"

namespace analognf::arch {

// Per-stage observability counters.
struct StageMetrics {
  // The stage's meter in the owning switch's stage ledger; stages add
  // the energy of their own work here (non-negative contributions only).
  energy::CategoryTotal* energy = nullptr;
  // Total wall-clock time spent inside Process() (graph-maintained).
  double process_ns = 0.0;
  // Packets offered to Process() (batch sizes summed) and call count.
  std::uint64_t packets = 0;
  std::uint64_t invocations = 0;
};

// Registry handles behind the `stage.<name>.*` metric names, maintained
// by the graph runner around each Process() call. All null until the
// graph is bound to a registry.
struct StageTelemetry {
  telemetry::CounterHandle packets;      // batch sizes summed
  telemetry::CounterHandle invocations;  // Process() calls
  telemetry::CounterHandle drops;        // verdicts settled by this stage
  telemetry::HistogramHandle ns;         // per-batch Process() wall time
  telemetry::HistogramHandle nj;         // per-batch stage-meter energy
};

// One slot of the pipeline. Implementations read and write PacketBatch
// lanes; a stage must skip packets whose verdict is already settled
// (anything other than Verdict::kForwarded).
class MatchActionStage {
 public:
  explicit MatchActionStage(std::string name) : name_(std::move(name)) {}
  virtual ~MatchActionStage() = default;
  MatchActionStage(const MatchActionStage&) = delete;
  MatchActionStage& operator=(const MatchActionStage&) = delete;

  const std::string& name() const { return name_; }

  // Runs the stage over the whole batch.
  virtual void Process(net::PacketBatch& batch) = 0;

  const StageMetrics& metrics() const { return metrics_; }

 protected:
  // Stage implementations accumulate their energy through this.
  energy::CategoryTotal& stage_meter() { return *metrics_.energy; }

 private:
  friend class StageGraph;
  std::string name_;
  StageMetrics metrics_;
  StageTelemetry telemetry_;
};

// An ordered chain of stages sharing one stage ledger. Run() walks the
// chain over a batch and attributes per-stage wall-clock time.
class StageGraph {
 public:
  explicit StageGraph(energy::EnergyLedger* stage_ledger)
      : stage_ledger_(stage_ledger) {}

  // Appends a stage, binding its meter ("stage.<name>") in the stage
  // ledger. Returns the stage for convenience.
  MatchActionStage& Add(std::unique_ptr<MatchActionStage> stage);

  // Inserts a stage at `index` (0 = first). Used by the switch to slot
  // custom stages in front of the traffic manager.
  MatchActionStage& Insert(std::size_t index,
                           std::unique_ptr<MatchActionStage> stage);

  // Runs every stage over the batch, in order.
  void Run(net::PacketBatch& batch);

  std::size_t size() const { return stages_.size(); }
  const std::vector<std::unique_ptr<MatchActionStage>>& stages() const {
    return stages_;
  }

  // Binds every current and future stage to `stage.<name>.*` metrics in
  // `registry` (packets/invocations/drops counters, ns/nJ histograms).
  // Run() additionally records per-stage wall time for the flight
  // recorder once bound. Telemetry is observability-only: it never
  // changes what a stage does to the batch.
  void BindTelemetry(telemetry::MetricsRegistry& registry);
  bool telemetry_bound() const { return registry_ != nullptr; }

  // Per-stage Process() nanoseconds of the most recent Run(); empty
  // until the graph is bound to a registry.
  const std::vector<double>& last_stage_ns() const { return last_stage_ns_; }

 private:
  void Bind(MatchActionStage& stage);
  void BindStageTelemetry(MatchActionStage& stage);

  energy::EnergyLedger* stage_ledger_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  std::vector<std::unique_ptr<MatchActionStage>> stages_;
  std::vector<double> last_stage_ns_;
};

}  // namespace analognf::arch
