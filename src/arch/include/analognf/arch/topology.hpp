// Multi-hop topology harness: cognitive switches chained over links.
//
// The single-switch experiments show one queue; deployments care about
// end-to-end behaviour across several hops, each with its own analog
// AQM. This harness wires N switches in a line (egress port 0 of hop k
// feeds the ingress of hop k+1 after a propagation delay), drives the
// first hop with generated traffic, and reports per-hop and end-to-end
// delay statistics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analognf/arch/switch.hpp"
#include "analognf/common/stats.hpp"
#include "analognf/common/timeseries.hpp"
#include "analognf/net/generator.hpp"

namespace analognf::arch {

struct TopologyConfig {
  std::size_t hops = 2;
  double propagation_delay_s = 0.001;
  double duration_s = 10.0;
  double warmup_s = 2.0;
  // Per-hop switch configuration (port 0 is the line's forwarding port).
  SwitchConfig hop{};
  // Route installed on every hop so traffic traverses the line.
  std::uint32_t dst_network = 0x0a000000;  // 10.0.0.0
  int dst_prefix_len = 8;
  // Simulation step (drain/forward granularity).
  double step_s = 0.001;

  void Validate() const;  // throws std::invalid_argument
};

struct TopologyReport {
  // Per-hop queueing delay of delivered packets (post-warmup).
  std::vector<analognf::RunningStats> hop_delay;
  // End-to-end latency (ingress of hop 0 to egress of the last hop,
  // including propagation) per delivered packet, post-warmup.
  analognf::RunningStats end_to_end;
  analognf::TimeSeries end_to_end_trace{"e2e_s"};
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::vector<SwitchStats> hop_stats;
  double total_pcam_energy_j = 0.0;
};

class LineTopology {
 public:
  // Builds the line and installs the forwarding route on every hop.
  // `make_packet` converts generated metadata into a wire packet
  // (the harness needs real bytes for each hop's parser).
  LineTopology(TopologyConfig config);

  // Runs generated traffic through the line. The generator's packets
  // are materialised as UDP datagrams toward dst_network.
  TopologyReport Run(net::TrafficGenerator& generator);

  CognitiveSwitch& hop(std::size_t index) { return *switches_.at(index); }
  std::size_t hops() const { return switches_.size(); }

 private:
  net::Packet Materialize(const net::PacketMeta& meta) const;

  TopologyConfig config_;
  std::vector<std::unique_ptr<CognitiveSwitch>> switches_;
};

}  // namespace analognf::arch
