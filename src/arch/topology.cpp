#include "analognf/arch/topology.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace analognf::arch {

void TopologyConfig::Validate() const {
  if (hops == 0) {
    throw std::invalid_argument("TopologyConfig: zero hops");
  }
  if (propagation_delay_s < 0.0) {
    throw std::invalid_argument("TopologyConfig: negative propagation");
  }
  if (!(duration_s > 0.0) || warmup_s < 0.0 || warmup_s >= duration_s) {
    throw std::invalid_argument("TopologyConfig: bad duration/warmup");
  }
  if (!(step_s > 0.0)) {
    throw std::invalid_argument("TopologyConfig: step <= 0");
  }
  if (dst_prefix_len < 0 || dst_prefix_len > 32) {
    throw std::invalid_argument("TopologyConfig: bad prefix length");
  }
  hop.Validate();
}

LineTopology::LineTopology(TopologyConfig config)
    : config_([&] {
        config.Validate();
        return config;
      }()) {
  switches_.reserve(config_.hops);
  for (std::size_t k = 0; k < config_.hops; ++k) {
    SwitchConfig hop_config = config_.hop;
    hop_config.seed = config_.hop.seed + 0x701 * (k + 1);
    auto sw = std::make_unique<CognitiveSwitch>(hop_config);
    sw->AddRoute(config_.dst_network, config_.dst_prefix_len, 0);
    switches_.push_back(std::move(sw));
  }
}

net::Packet LineTopology::Materialize(const net::PacketMeta& meta) const {
  net::EthernetHeader eth;
  eth.dst = {2, 0, 0, 0, 0, 1};
  eth.src = {2, 0, 0, 0, 0, 2};
  net::Ipv4Header ip;
  // A stable per-flow source address inside 8.0.0.0/8.
  ip.src_ip = 0x08000000u |
              static_cast<std::uint32_t>(meta.flow_hash & 0x00ffffff);
  ip.dst_ip = config_.dst_network | 0x5;
  ip.protocol = net::kIpProtoUdp;
  ip.dscp = meta.priority >= 4 ? std::uint8_t{46} : std::uint8_t{0};
  net::UdpHeader udp;
  udp.src_port = static_cast<std::uint16_t>(1024 + (meta.flow_hash & 0xfff));
  udp.dst_port = 4000;
  // Keep the wire size close to the metadata size (headers included).
  const std::size_t overhead = net::EthernetHeader::kSize +
                               net::Ipv4Header::kSize +
                               net::UdpHeader::kSize;
  const std::size_t payload =
      meta.size_bytes > overhead ? meta.size_bytes - overhead : 1;
  return net::PacketBuilder()
      .Ethernet(eth)
      .Ipv4(ip)
      .Udp(udp)
      .Payload(payload)
      .Build();
}

TopologyReport LineTopology::Run(net::TrafficGenerator& generator) {
  TopologyReport report;
  report.hop_delay.resize(switches_.size());

  struct Pending {
    std::size_t hop;
    net::Packet packet;
    double origin_ingress_s;
  };
  std::multimap<double, Pending> pending;
  // Per-hop: mirror of the switch's id counter + origin-time lookup.
  std::vector<std::uint64_t> ids_assigned(switches_.size(), 0);
  std::vector<std::unordered_map<std::uint64_t, double>> origin_time(
      switches_.size());
  std::vector<double> last_inject_s(switches_.size(), 0.0);

  net::PacketMeta next_arrival = generator.Next();
  std::vector<Delivery> drained;  // reused across drain calls

  // Per-hop ingress batches: same-instant injects ride the switch's
  // batched stage-graph path in one call. InjectBatch is bit-identical
  // to sequential Inject calls, so buffering cannot change verdicts,
  // ids, stats or energy — only how many times the pipeline is entered.
  struct HopBatch {
    double now = 0.0;
    std::vector<net::Packet> packets;
    std::vector<double> origins;  // origin ingress time per packet
  };
  std::vector<HopBatch> batches(switches_.size());

  auto flush = [&](std::size_t hop) {
    HopBatch& b = batches[hop];
    if (b.packets.empty()) return;
    const std::vector<Verdict> verdicts =
        switches_[hop]->InjectBatch(b.packets, b.now);
    for (std::size_t j = 0; j < verdicts.size(); ++j) {
      const Verdict verdict = verdicts[j];
      if (verdict == Verdict::kForwarded || verdict == Verdict::kAqmDrop ||
          verdict == Verdict::kQueueFull) {
        const std::uint64_t id = ids_assigned[hop]++;
        if (verdict == Verdict::kForwarded) {
          origin_time[hop][id] = b.origins[j];
        }
      }
    }
    b.packets.clear();
    b.origins.clear();
  };

  auto inject = [&](std::size_t hop, net::Packet packet, double when_s,
                    double origin_ingress_s) {
    const double now = std::max(when_s, last_inject_s[hop]);
    last_inject_s[hop] = now;
    HopBatch& b = batches[hop];
    // A batch holds one arrival instant; a new instant flushes the old.
    if (!b.packets.empty() && b.now != now) flush(hop);
    b.now = now;
    b.packets.push_back(std::move(packet));
    b.origins.push_back(origin_ingress_s);
  };

  for (double t = 0.0; t <= config_.duration_s; t += config_.step_s) {
    // 1. Fresh arrivals into hop 0.
    while (next_arrival.arrival_time_s <= t) {
      ++report.offered;
      inject(0, Materialize(next_arrival), next_arrival.arrival_time_s,
             next_arrival.arrival_time_s);
      next_arrival = generator.Next();
      if (next_arrival.arrival_time_s > config_.duration_s) {
        next_arrival.arrival_time_s = config_.duration_s * 2.0;  // stop
        break;
      }
    }
    // 2. In-flight packets reaching their next hop.
    while (!pending.empty() && pending.begin()->first <= t) {
      const auto it = pending.begin();
      inject(it->second.hop, std::move(it->second.packet), it->first,
             it->second.origin_ingress_s);
      pending.erase(it);
    }
    // All buffered injects must land before this step's drains.
    for (std::size_t k = 0; k < switches_.size(); ++k) flush(k);
    // 3. Drain every hop; forward deliveries down the line.
    for (std::size_t k = 0; k < switches_.size(); ++k) {
      drained.clear();
      switches_[k]->DrainInto(t, drained);
      for (const Delivery& d : drained) {
        const auto origin = origin_time[k].find(d.meta.id);
        if (origin == origin_time[k].end()) continue;  // pre-tracking
        const double t0 = origin->second;
        origin_time[k].erase(origin);
        if (d.departure_s >= config_.warmup_s) {
          report.hop_delay[k].Add(d.sojourn_s);
        }
        const double arrive_next =
            d.departure_s + config_.propagation_delay_s;
        if (k + 1 < switches_.size()) {
          // Rebuild the wire packet for the next hop's parser. The
          // delivered metadata does not carry bytes, so re-materialise.
          net::PacketMeta meta = d.meta;
          pending.emplace(arrive_next,
                          Pending{k + 1, Materialize(meta), t0});
        } else {
          ++report.delivered;
          const double e2e = arrive_next - t0;
          if (arrive_next >= config_.warmup_s) {
            report.end_to_end.Add(e2e);
            report.end_to_end_trace.Append(arrive_next, e2e);
          }
        }
      }
    }
  }

  // Late injects (after the final drain) still count in the hop stats.
  for (std::size_t k = 0; k < switches_.size(); ++k) flush(k);

  for (const auto& sw : switches_) {
    report.hop_stats.push_back(sw->stats());
    report.total_pcam_energy_j +=
        sw->ledger().Of(energy::category::kPcamSearch).energy_j;
  }
  return report;
}

}  // namespace analognf::arch
