#include "analognf/arch/switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace analognf::arch {

std::string ToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kForwarded:
      return "forwarded";
    case Verdict::kParseError:
      return "parse-error";
    case Verdict::kFirewallDeny:
      return "firewall-deny";
    case Verdict::kNoRoute:
      return "no-route";
    case Verdict::kAqmDrop:
      return "aqm-drop";
    case Verdict::kQueueFull:
      return "queue-full";
  }
  return "unknown";
}

void SwitchConfig::Validate() const {
  if (port_count == 0) {
    throw std::invalid_argument("SwitchConfig: zero ports");
  }
  if (!(port_rate_bps > 0.0)) {
    throw std::invalid_argument("SwitchConfig: port rate <= 0");
  }
  digital_technology.Validate();
  if (service_classes == 0) {
    throw std::invalid_argument("SwitchConfig: zero service classes");
  }
  if (scheduler == SchedulerPolicy::kWeightedRoundRobin) {
    if (wrr_weights.size() != service_classes) {
      throw std::invalid_argument(
          "SwitchConfig: wrr_weights size must equal service_classes");
    }
    for (std::uint32_t w : wrr_weights) {
      if (w == 0) {
        throw std::invalid_argument("SwitchConfig: zero WRR weight");
      }
    }
  }
  if (enable_aqm) aqm.Validate();
}

namespace {
constexpr std::uint32_t kActionPermit = 1;
constexpr std::uint32_t kActionDeny = 0;
}  // namespace

CognitiveSwitch::CognitiveSwitch(SwitchConfig config)
    : config_([&] {
        config.Validate();
        return config;
      }()),
      routes_(config_.digital_technology),
      firewall_(kFiveTupleBits, config_.digital_technology),
      movement_() {
  ports_.reserve(config_.port_count);
  for (std::size_t p = 0; p < config_.port_count; ++p) {
    EgressPort port;
    for (std::size_t sc = 0; sc < config_.service_classes; ++sc) {
      port.queues.emplace_back(config_.egress_queue);
      if (config_.enable_aqm) {
        aqm::AnalogAqmConfig aqm_config = config_.aqm;
        aqm_config.seed =
            config_.seed + 0xa9 * (p + 1) + 0x1d * (sc + 1);
        port.aqms.push_back(std::make_unique<aqm::AnalogAqm>(aqm_config));
      }
    }
    ports_.push_back(std::move(port));
  }
}

void CognitiveSwitch::AddRoute(std::uint32_t dst_ip, int prefix_len,
                               std::size_t port) {
  if (port >= config_.port_count) {
    throw std::invalid_argument("AddRoute: port out of range");
  }
  routes_.AddRoute(dst_ip, prefix_len, static_cast<std::uint32_t>(port));
}

void CognitiveSwitch::AddFirewallRule(const FirewallPattern& pattern,
                                      bool permit, std::int32_t priority) {
  tcam::TcamTable::Entry entry;
  entry.pattern = BuildFirewallWord(pattern);
  entry.action = permit ? kActionPermit : kActionDeny;
  entry.priority = priority;
  firewall_.Insert(std::move(entry));
}

Verdict CognitiveSwitch::Inject(const net::Packet& packet, double now_s) {
  InjectBatchInto(std::span<const net::Packet>(&packet, 1), now_s,
                  scratch_.verdicts);
  return scratch_.verdicts.front();
}

std::vector<Verdict> CognitiveSwitch::InjectBatch(
    std::span<const net::Packet> packets, double now_s) {
  std::vector<Verdict> verdicts;
  InjectBatchInto(packets, now_s, verdicts);
  return verdicts;
}

void CognitiveSwitch::InjectBatchInto(std::span<const net::Packet> packets,
                                      double now_s,
                                      std::vector<Verdict>& verdicts) {
  const std::size_t n = packets.size();
  BatchScratch& s = scratch_;
  verdicts.assign(n, Verdict::kForwarded);

  // --- Stage 1: parser (digital front-end; Fig. 5 leftmost block). -----
  // Stateless over the batch, so it fans out freely. Packets that fail to
  // parse, or parse to something the IPv4 data plane cannot route, settle
  // their verdict here and skip the match-action stages.
  parser_.ParseBatch(packets.data(), n, s.parsed);
  s.tuples.clear();
  s.fw_keys.clear();
  s.fw_index.assign(n, kNpos);
  for (std::size_t i = 0; i < n; ++i) {
    if (!s.parsed[i].ok()) {
      verdicts[i] = Verdict::kParseError;
      continue;
    }
    // The routing/firewall data plane is IPv4; a well-formed IPv6 packet
    // parses but has no route here.
    if (!s.parsed[i].ipv4.has_value()) {
      verdicts[i] = Verdict::kNoRoute;
      continue;
    }
    s.fw_index[i] = s.fw_keys.size();
    s.tuples.push_back(s.parsed[i].Key());
    s.fw_keys.push_back(FiveTupleKey(s.tuples.back()));
  }

  // --- Stage 2: digital MAT 1, firewall ternary match (stays digital). -
  firewall_.SearchBatch(s.fw_keys, s.fw_results);

  // --- Stage 3: digital MAT 2, IP lookup (LPM) for permitted packets. --
  s.lpm_addrs.clear();
  s.lpm_index.assign(n, kNpos);
  for (std::size_t i = 0; i < n; ++i) {
    if (s.fw_index[i] == kNpos) continue;
    const auto& fw = s.fw_results[s.fw_index[i]];
    if (fw.has_value() && fw->action == kActionDeny) {
      verdicts[i] = Verdict::kFirewallDeny;
      continue;
    }
    s.lpm_index[i] = s.lpm_addrs.size();
    s.lpm_addrs.push_back(s.parsed[i].ipv4->dst_ip);
  }
  routes_.LookupBatch(s.lpm_addrs.data(), s.lpm_addrs.size(), s.lpm_results);

  // --- Stage 4: ordered per-packet commit. -----------------------------
  // Stats, ledger energy, packet ids and AQM admission all mutate shared
  // state, so this loop replays them in packet order with exactly the
  // floating-point accumulation sequence of a sequential Inject() loop;
  // the Meter() pointers only amortise the string-keyed map lookups.
  energy::CategoryTotal& compute =
      *ledger_.Meter(energy::category::kDigitalCompute);
  energy::CategoryTotal& movement =
      *ledger_.Meter(energy::category::kDataMovement);
  energy::CategoryTotal& tcam = *ledger_.Meter(energy::category::kTcamSearch);
  energy::CategoryTotal& pcam = *ledger_.Meter(energy::category::kPcamSearch);
  for (std::size_t i = 0; i < n; ++i) {
    ++stats_.injected;
    // Header extraction is a digital operation with the classic
    // storage<->compute shuttling cost.
    const auto header_bits = static_cast<std::uint64_t>(
        8 * std::min<std::size_t>(packets[i].size(), 42));
    const energy::MovementBreakdown cost = movement_.CostOf(header_bits);
    compute.energy_j += cost.compute_j;
    ++compute.operations;
    movement.energy_j += cost.movement_j;
    ++movement.operations;
    if (verdicts[i] == Verdict::kParseError) {
      ++stats_.parse_errors;
      continue;
    }
    if (s.fw_index[i] != kNpos) {
      tcam.energy_j += firewall_.SearchEnergyJ();
      ++tcam.operations;
    }
    if (verdicts[i] == Verdict::kFirewallDeny) {
      ++stats_.firewall_denies;
      continue;
    }
    if (s.lpm_index[i] != kNpos) {
      tcam.energy_j += routes_.table().SearchEnergyJ();
      ++tcam.operations;
    }
    const auto* route =
        s.lpm_index[i] != kNpos ? &s.lpm_results[s.lpm_index[i]] : nullptr;
    if (route == nullptr || !route->has_value()) {
      verdicts[i] = Verdict::kNoRoute;
      ++stats_.no_route;
      continue;
    }
    net::PacketMeta meta;
    meta.id = next_packet_id_++;
    meta.arrival_time_s = now_s;
    meta.size_bytes = static_cast<std::uint32_t>(packets[i].size());
    meta.flow_hash = s.tuples[s.fw_index[i]].Hash();
    // DSCP class selector bits map onto our 3-bit priority.
    meta.priority = static_cast<std::uint8_t>(s.parsed[i].ipv4->dscp >> 3);
    verdicts[i] = AdmitAndEnqueue((*route)->action, meta, now_s, pcam);
  }
}

Verdict CognitiveSwitch::AdmitAndEnqueue(std::size_t port_index,
                                         const net::PacketMeta& meta,
                                         double now_s,
                                         energy::CategoryTotal& pcam) {
  EgressPort& port = ports_[port_index];
  const std::size_t service_class = ClassOf(meta);
  net::PacketQueue& queue = port.queues[service_class];

  // --- Cognitive traffic manager: analog AQM admission. ----------------
  if (!port.aqms.empty()) {
    aqm::AnalogAqm& class_aqm = *port.aqms[service_class];
    aqm::AqmContext ctx;
    ctx.now_s = now_s;
    ctx.sojourn_s = queue.HeadSojourn(now_s);
    ctx.queue_bytes = queue.bytes();
    ctx.queue_packets = queue.packets();
    ctx.packet = meta;
    const double before_j = class_aqm.ConsumedEnergyJ();
    const bool drop = class_aqm.ShouldDropOnEnqueue(ctx);
    pcam.energy_j += class_aqm.ConsumedEnergyJ() - before_j;
    ++pcam.operations;
    if (drop) {
      queue.NoteAqmDrop(meta);
      ++stats_.aqm_drops;
      return Verdict::kAqmDrop;
    }
  }

  if (!queue.Enqueue(meta, now_s)) {
    ++stats_.queue_full;
    return Verdict::kQueueFull;
  }
  ++stats_.forwarded;
  return Verdict::kForwarded;
}

std::size_t CognitiveSwitch::PickClass(EgressPort& port, double start_s) {
  auto eligible = [&](std::size_t sc) {
    const net::PacketMeta* head = port.queues[sc].Peek();
    return head != nullptr && head->arrival_time_s <= start_s;
  };
  if (config_.scheduler == SchedulerPolicy::kStrictPriority) {
    for (std::size_t sc = 0; sc < port.queues.size(); ++sc) {
      if (eligible(sc)) return sc;
    }
    return 0;  // unreachable given the caller's emptiness check
  }
  // Weighted round robin: spend the current class's credit while it is
  // eligible, otherwise rotate; classes found ineligible forfeit their
  // remaining credit for this round.
  const std::size_t classes = port.queues.size();
  for (std::size_t hops = 0; hops < 2 * classes + 1; ++hops) {
    if (port.wrr_credit > 0 && eligible(port.wrr_class)) {
      --port.wrr_credit;
      return port.wrr_class;
    }
    port.wrr_class = (port.wrr_class + 1) % classes;
    port.wrr_credit = config_.wrr_weights[port.wrr_class];
  }
  return 0;  // unreachable: some class is eligible by precondition
}

std::size_t CognitiveSwitch::ClassOf(const net::PacketMeta& meta) const {
  const std::size_t classes = config_.service_classes;
  if (classes == 1) return 0;
  // Proportional DSCP mapping: invert the 3-bit priority (0..7) so high
  // priority lands in low class index, then scale onto the class count.
  // Every class is reachable for classes <= 8, and classes == 2 keeps
  // the historical split (priority >= 4 -> class 0).
  const std::size_t inv = 7 - std::min<std::size_t>(meta.priority, 7);
  return std::min(classes - 1, inv * classes / 8);
}

std::vector<Delivery> CognitiveSwitch::Drain(double until_s) {
  std::vector<Delivery> out;
  DrainInto(until_s, out);
  return out;
}

std::size_t CognitiveSwitch::DrainInto(double until_s,
                                       std::vector<Delivery>& out) {
  const std::size_t first = out.size();
  // Reserve for the worst case (every queued packet departs by until_s)
  // so the append loop below never reallocates mid-drain.
  std::size_t queued = 0;
  for (const EgressPort& port : ports_) {
    for (const net::PacketQueue& q : port.queues) queued += q.packets();
  }
  if (queued == 0) return 0;  // fast path: nothing queued anywhere
  out.reserve(first + queued);
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    EgressPort& port = ports_[p];
    for (;;) {
      // Strict-priority scheduling: the lowest class index whose head is
      // already waiting at the link's next-free instant wins; if none is
      // waiting yet, the earliest-arriving head starts the next busy
      // period.
      bool any = false;
      double earliest_arrival = 0.0;
      for (const net::PacketQueue& q : port.queues) {
        const net::PacketMeta* head = q.Peek();
        if (head == nullptr) continue;
        if (!any || head->arrival_time_s < earliest_arrival) {
          earliest_arrival = head->arrival_time_s;
        }
        any = true;
      }
      if (!any) break;  // all queues empty
      // The next service slot starts when the link frees up or the first
      // packet arrives; among heads already waiting then, the lowest
      // class index (highest priority) is served.
      const double start_s = std::max(port.next_free_s, earliest_arrival);
      const std::size_t pick = PickClass(port, start_s);
      const net::PacketMeta* head = port.queues[pick].Peek();
      const double ready_s = std::max(port.next_free_s, head->arrival_time_s);
      const double service_s = static_cast<double>(head->size_bytes) * 8.0 /
                               config_.port_rate_bps;
      const double depart_s = ready_s + service_s;
      if (depart_s > until_s) break;
      auto dequeued = port.queues[pick].Dequeue(depart_s);
      port.next_free_s = depart_s;
      Delivery d;
      d.port = p;
      d.service_class = pick;
      d.meta = dequeued->meta;
      d.departure_s = depart_s;
      d.sojourn_s = dequeued->sojourn_s;
      out.push_back(d);
      ++stats_.delivered;
    }
  }
  // Sort only what this call appended; earlier contents are untouched.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [](const Delivery& a, const Delivery& b) {
              return a.departure_s < b.departure_s;
            });
  return out.size() - first;
}

const net::PacketQueue& CognitiveSwitch::egress_queue(
    std::size_t port, std::size_t service_class) const {
  return ports_.at(port).queues.at(service_class);
}

aqm::AnalogAqm* CognitiveSwitch::port_aqm(std::size_t port,
                                          std::size_t service_class) {
  EgressPort& p = ports_.at(port);
  if (p.aqms.empty()) return nullptr;
  return p.aqms.at(service_class).get();
}

}  // namespace analognf::arch
