#include "analognf/arch/switch.hpp"

#include <stdexcept>
#include <utility>

#include "analognf/arch/stages.hpp"

namespace analognf::arch {

void SwitchConfig::Validate() const {
  if (port_count == 0) {
    throw std::invalid_argument("SwitchConfig: zero ports");
  }
  if (!(port_rate_bps > 0.0)) {
    throw std::invalid_argument("SwitchConfig: port rate <= 0");
  }
  digital_technology.Validate();
  if (service_classes == 0) {
    throw std::invalid_argument("SwitchConfig: zero service classes");
  }
  // A non-empty weight vector must be coherent under either scheduler:
  // silently ignoring a malformed one under strict priority hides the
  // bug until someone flips the scheduler.
  if (!wrr_weights.empty() && wrr_weights.size() != service_classes) {
    throw std::invalid_argument(
        "SwitchConfig: wrr_weights size must equal service_classes");
  }
  for (std::uint32_t w : wrr_weights) {
    if (w == 0) {
      throw std::invalid_argument("SwitchConfig: zero WRR weight");
    }
  }
  if (scheduler == SchedulerPolicy::kWeightedRoundRobin &&
      wrr_weights.empty()) {
    throw std::invalid_argument(
        "SwitchConfig: wrr_weights size must equal service_classes");
  }
  if (enable_aqm) aqm.Validate();
  if (enable_load_balancer) {
    load_balancer.Validate();
    std::vector<bool> seen(port_count, false);
    for (std::uint32_t p : lb_ports) {
      if (p >= port_count) {
        throw std::invalid_argument("SwitchConfig: lb_port out of range");
      }
      if (seen[p]) {
        throw std::invalid_argument("SwitchConfig: duplicate lb_port");
      }
      seen[p] = true;
    }
  }
  if (enable_classifier) {
    if (classifier_classes.empty()) {
      throw std::invalid_argument(
          "SwitchConfig: classifier enabled without classes");
    }
    if (!(classifier_min_confidence >= 0.0) ||
        !(classifier_min_confidence <= 1.0)) {
      throw std::invalid_argument(
          "SwitchConfig: classifier_min_confidence outside [0, 1]");
    }
  }
  telemetry.Validate();
}

SharedTables::SharedTables(tcam::TcamTechnology technology,
                           std::size_t ports,
                           tcam::TcamSearchConfig firewall_config,
                           tcam::LpmConfig route_config)
    : firewall(kFiveTupleBits, technology, firewall_config),
      routes(technology, route_config),
      port_count(ports) {}

std::size_t SharedTables::AddRoute(std::uint32_t dst_ip, int prefix_len,
                                   std::size_t port) {
  if (port >= port_count) {
    throw std::invalid_argument("SharedTables::AddRoute: port out of range");
  }
  return routes.AddRoute(dst_ip, prefix_len, static_cast<std::uint32_t>(port));
}

void SharedTables::WithdrawRoute(std::size_t route_index) {
  routes.WithdrawRoute(route_index);
}

std::size_t SharedTables::AddFirewallRule(const FirewallPattern& pattern,
                                          bool permit, std::int32_t priority) {
  tcam::TcamTable::Entry entry;
  entry.pattern = BuildFirewallWord(pattern);
  entry.action = permit ? kFirewallActionPermit : kFirewallActionDeny;
  entry.priority = priority;
  return firewall.Insert(std::move(entry));
}

void SharedTables::EraseFirewallRule(std::size_t rule_index) {
  firewall.Erase(rule_index);
}

void SharedTables::Commit() {
  firewall.Commit();
  routes.Commit();
}

CognitiveSwitch::CognitiveSwitch(SwitchConfig config)
    : CognitiveSwitch(std::move(config), nullptr) {}

CognitiveSwitch::CognitiveSwitch(SwitchConfig config, const SharedTables* shared)
    : config_([&] {
        config.Validate();
        return config;
      }()),
      shared_tables_(shared),
      movement_(),
      telemetry_(config_.telemetry) {
  // Build the Fig. 5 chain: parser, digital MATs, optional cognitive
  // analog MATs, and the traffic manager last (it owns the ordered
  // commit, so custom stages inserted via AddStage land in front of it).
  auto parse = std::make_unique<ParseStage>(&movement_);
  parse_ = parse.get();
  graph_.Add(std::move(parse));

  auto firewall =
      shared_tables_ != nullptr
          ? std::make_unique<FirewallStage>(&shared_tables_->firewall)
          : std::make_unique<FirewallStage>(kFiveTupleBits,
                                            config_.digital_technology);
  firewall_ = firewall.get();
  graph_.Add(std::move(firewall));

  auto route = shared_tables_ != nullptr
                   ? std::make_unique<RouteStage>(&shared_tables_->routes,
                                                  config_.port_count)
                   : std::make_unique<RouteStage>(config_.digital_technology,
                                                  config_.port_count);
  route_ = route.get();
  graph_.Add(std::move(route));

  if (config_.enable_load_balancer) {
    auto lb = std::make_unique<LoadBalancerStage>(
        config_.lb_ports, config_.port_count, config_.load_balancer);
    lb_ = lb.get();
    graph_.Add(std::move(lb));
  }

  if (config_.enable_classifier) {
    auto classify = std::make_unique<TrafficClassStage>(
        config_.classifier_classes, config_.classifier_hardware,
        config_.classifier_min_confidence);
    classify_ = classify.get();
    graph_.Add(std::move(classify));
  }

  auto tm = std::make_unique<TrafficManagerStage>(&config_, &movement_,
                                                  &stats_, &ledger_);
  tm_ = tm.get();
  graph_.Add(std::move(tm));

  BindTelemetry();
}

void CognitiveSwitch::BindTelemetry() {
  if (!telemetry_.enabled()) return;
  telemetry::MetricsRegistry& registry = telemetry_.metrics();
  graph_.BindTelemetry(registry);
  firewall_->BindTelemetry(registry);
  route_->BindTelemetry(registry);
  if (lb_ != nullptr) lb_->BindTelemetry(registry);
  if (classify_ != nullptr) classify_->BindTelemetry(registry);

  verdict_counters_.injected = registry.GetCounter("switch.injected");
  verdict_counters_.forwarded = registry.GetCounter("switch.forwarded");
  verdict_counters_.parse_errors = registry.GetCounter("switch.parse_errors");
  verdict_counters_.firewall_denies =
      registry.GetCounter("switch.firewall_denies");
  verdict_counters_.no_route = registry.GetCounter("switch.no_route");
  verdict_counters_.aqm_drops = registry.GetCounter("switch.aqm_drops");
  verdict_counters_.queue_full = registry.GetCounter("switch.queue_full");
  batches_counter_ = registry.GetCounter("switch.batches");
  queue_depth_gauge_ = registry.GetGauge("switch.queue_depth");
  telemetry::HistogramSpec batch_spec;
  batch_spec.first_bound = 1.0;
  batch_spec.growth = 2.0;
  batch_spec.buckets = 16;  // up to 64 Ki packets per batch
  batch_size_hist_ = registry.GetHistogram("switch.batch_size", batch_spec);
}

void CognitiveSwitch::RecordBatchTrace(double now_s) {
  telemetry::BatchTraceRecord rec;
  rec.now_s = now_s;
  rec.batch_size = static_cast<std::uint32_t>(batch_.size());
  for (const Verdict v : batch_.verdicts) {
    switch (v) {
      case Verdict::kForwarded:
        ++rec.forwarded;
        break;
      case Verdict::kParseError:
        ++rec.parse_errors;
        break;
      case Verdict::kFirewallDeny:
        ++rec.firewall_denies;
        break;
      case Verdict::kNoRoute:
        ++rec.no_route;
        break;
      case Verdict::kAqmDrop:
        ++rec.aqm_drops;
        break;
      case Verdict::kQueueFull:
        ++rec.queue_full;
        break;
    }
  }
  rec.queue_depth = tm_->QueuedPackets();

  const std::vector<double>& stage_ns = graph_.last_stage_ns();
  rec.stage_count = static_cast<std::uint32_t>(stage_ns.size());
  for (std::size_t si = 0; si < stage_ns.size(); ++si) {
    rec.total_ns += stage_ns[si];
    // Stages beyond the fixed array fold into the last slot.
    const std::size_t slot =
        si < telemetry::BatchTraceRecord::kMaxStages
            ? si
            : telemetry::BatchTraceRecord::kMaxStages - 1;
    rec.stage_ns[slot] += stage_ns[si];
  }

  const net::PacketBatch::DegreeSummary& deg = batch_.pcam_degrees;
  rec.degree_count = deg.count;
  rec.degree_min = deg.min;
  rec.degree_max = deg.max;
  rec.degree_sum = deg.sum;

  verdict_counters_.injected.Inc(batch_.size());
  verdict_counters_.forwarded.Inc(rec.forwarded);
  verdict_counters_.parse_errors.Inc(rec.parse_errors);
  verdict_counters_.firewall_denies.Inc(rec.firewall_denies);
  verdict_counters_.no_route.Inc(rec.no_route);
  verdict_counters_.aqm_drops.Inc(rec.aqm_drops);
  verdict_counters_.queue_full.Inc(rec.queue_full);
  batches_counter_.Inc();
  queue_depth_gauge_.Set(static_cast<double>(rec.queue_depth));
  batch_size_hist_.Observe(static_cast<double>(batch_.size()));

  telemetry_.recorder().Record(rec);
}

std::size_t CognitiveSwitch::AddRoute(std::uint32_t dst_ip, int prefix_len,
                                      std::size_t port) {
  return route_->AddRoute(dst_ip, prefix_len, port);
}

void CognitiveSwitch::WithdrawRoute(std::size_t route_index) {
  route_->WithdrawRoute(route_index);
}

std::size_t CognitiveSwitch::AddFirewallRule(const FirewallPattern& pattern,
                                             bool permit,
                                             std::int32_t priority) {
  return firewall_->AddRule(pattern, permit, priority);
}

void CognitiveSwitch::EraseFirewallRule(std::size_t rule_index) {
  firewall_->EraseRule(rule_index);
}

void CognitiveSwitch::Commit() {
  if (shared_tables_ != nullptr) return;  // the tables' owner commits
  firewall_->owned_table()->Commit();
  route_->owned_routes()->Commit();
}

MatchActionStage& CognitiveSwitch::AddStage(
    std::unique_ptr<MatchActionStage> stage) {
  return graph_.Insert(graph_.size() - 1, std::move(stage));
}

void CognitiveSwitch::SetWrrWeights(const std::vector<std::uint32_t>& weights) {
  tm_->SetWrrWeights(weights);
}

Verdict CognitiveSwitch::Inject(const net::Packet& packet, double now_s) {
  Commit();  // publish staged control-plane mutations at the batch boundary
  batch_.Reset(&packet, 1, now_s);
  graph_.Run(batch_);
  if (telemetry_.enabled()) RecordBatchTrace(now_s);
  return batch_.verdicts.front();
}

std::vector<Verdict> CognitiveSwitch::InjectBatch(
    std::span<const net::Packet> packets, double now_s) {
  Commit();  // publish staged control-plane mutations at the batch boundary
  batch_.Reset(packets.data(), packets.size(), now_s);
  graph_.Run(batch_);
  if (telemetry_.enabled()) RecordBatchTrace(now_s);
  return {batch_.verdicts.begin(), batch_.verdicts.end()};
}

std::vector<Delivery> CognitiveSwitch::Drain(double until_s) {
  std::vector<Delivery> out;
  DrainInto(until_s, out);
  return out;
}

std::size_t CognitiveSwitch::DrainInto(double until_s,
                                       std::vector<Delivery>& out) {
  return tm_->DrainInto(until_s, out);
}

const net::PacketQueue& CognitiveSwitch::egress_queue(
    std::size_t port, std::size_t service_class) const {
  return tm_->egress_queue(port, service_class);
}

aqm::AnalogAqm* CognitiveSwitch::port_aqm(std::size_t port,
                                          std::size_t service_class) {
  return tm_->port_aqm(port, service_class);
}

cognitive::AnalogLoadBalancer* CognitiveSwitch::load_balancer() {
  return lb_ != nullptr ? &lb_->balancer() : nullptr;
}

cognitive::AnalogTrafficClassifier* CognitiveSwitch::classifier() {
  return classify_ != nullptr ? &classify_->classifier() : nullptr;
}

}  // namespace analognf::arch
