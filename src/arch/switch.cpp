#include "analognf/arch/switch.hpp"

#include <stdexcept>
#include <utility>

#include "analognf/arch/stages.hpp"

namespace analognf::arch {

void SwitchConfig::Validate() const {
  if (port_count == 0) {
    throw std::invalid_argument("SwitchConfig: zero ports");
  }
  if (!(port_rate_bps > 0.0)) {
    throw std::invalid_argument("SwitchConfig: port rate <= 0");
  }
  digital_technology.Validate();
  if (service_classes == 0) {
    throw std::invalid_argument("SwitchConfig: zero service classes");
  }
  // A non-empty weight vector must be coherent under either scheduler:
  // silently ignoring a malformed one under strict priority hides the
  // bug until someone flips the scheduler.
  if (!wrr_weights.empty() && wrr_weights.size() != service_classes) {
    throw std::invalid_argument(
        "SwitchConfig: wrr_weights size must equal service_classes");
  }
  for (std::uint32_t w : wrr_weights) {
    if (w == 0) {
      throw std::invalid_argument("SwitchConfig: zero WRR weight");
    }
  }
  if (scheduler == SchedulerPolicy::kWeightedRoundRobin &&
      wrr_weights.empty()) {
    throw std::invalid_argument(
        "SwitchConfig: wrr_weights size must equal service_classes");
  }
  if (enable_aqm) aqm.Validate();
  if (enable_load_balancer) {
    load_balancer.Validate();
    std::vector<bool> seen(port_count, false);
    for (std::uint32_t p : lb_ports) {
      if (p >= port_count) {
        throw std::invalid_argument("SwitchConfig: lb_port out of range");
      }
      if (seen[p]) {
        throw std::invalid_argument("SwitchConfig: duplicate lb_port");
      }
      seen[p] = true;
    }
  }
  if (enable_classifier) {
    if (classifier_classes.empty()) {
      throw std::invalid_argument(
          "SwitchConfig: classifier enabled without classes");
    }
    if (!(classifier_min_confidence >= 0.0) ||
        !(classifier_min_confidence <= 1.0)) {
      throw std::invalid_argument(
          "SwitchConfig: classifier_min_confidence outside [0, 1]");
    }
  }
}

CognitiveSwitch::CognitiveSwitch(SwitchConfig config)
    : config_([&] {
        config.Validate();
        return config;
      }()),
      movement_() {
  // Build the Fig. 5 chain: parser, digital MATs, optional cognitive
  // analog MATs, and the traffic manager last (it owns the ordered
  // commit, so custom stages inserted via AddStage land in front of it).
  auto parse = std::make_unique<ParseStage>(&movement_);
  parse_ = parse.get();
  graph_.Add(std::move(parse));

  auto firewall =
      std::make_unique<FirewallStage>(kFiveTupleBits, config_.digital_technology);
  firewall_ = firewall.get();
  graph_.Add(std::move(firewall));

  auto route = std::make_unique<RouteStage>(config_.digital_technology,
                                            config_.port_count);
  route_ = route.get();
  graph_.Add(std::move(route));

  if (config_.enable_load_balancer) {
    auto lb = std::make_unique<LoadBalancerStage>(
        config_.lb_ports, config_.port_count, config_.load_balancer);
    lb_ = lb.get();
    graph_.Add(std::move(lb));
  }

  if (config_.enable_classifier) {
    auto classify = std::make_unique<TrafficClassStage>(
        config_.classifier_classes, config_.classifier_hardware,
        config_.classifier_min_confidence);
    classify_ = classify.get();
    graph_.Add(std::move(classify));
  }

  auto tm = std::make_unique<TrafficManagerStage>(
      &config_, &movement_, &firewall_->table(), &route_->routes().table(),
      &stats_, &ledger_);
  tm_ = tm.get();
  graph_.Add(std::move(tm));
}

void CognitiveSwitch::AddRoute(std::uint32_t dst_ip, int prefix_len,
                               std::size_t port) {
  route_->AddRoute(dst_ip, prefix_len, port);
}

void CognitiveSwitch::AddFirewallRule(const FirewallPattern& pattern,
                                      bool permit, std::int32_t priority) {
  firewall_->AddRule(pattern, permit, priority);
}

MatchActionStage& CognitiveSwitch::AddStage(
    std::unique_ptr<MatchActionStage> stage) {
  return graph_.Insert(graph_.size() - 1, std::move(stage));
}

Verdict CognitiveSwitch::Inject(const net::Packet& packet, double now_s) {
  batch_.Reset(&packet, 1, now_s);
  graph_.Run(batch_);
  return batch_.verdicts.front();
}

std::vector<Verdict> CognitiveSwitch::InjectBatch(
    std::span<const net::Packet> packets, double now_s) {
  batch_.Reset(packets.data(), packets.size(), now_s);
  graph_.Run(batch_);
  return {batch_.verdicts.begin(), batch_.verdicts.end()};
}

std::vector<Delivery> CognitiveSwitch::Drain(double until_s) {
  std::vector<Delivery> out;
  DrainInto(until_s, out);
  return out;
}

std::size_t CognitiveSwitch::DrainInto(double until_s,
                                       std::vector<Delivery>& out) {
  return tm_->DrainInto(until_s, out);
}

const net::PacketQueue& CognitiveSwitch::egress_queue(
    std::size_t port, std::size_t service_class) const {
  return tm_->egress_queue(port, service_class);
}

aqm::AnalogAqm* CognitiveSwitch::port_aqm(std::size_t port,
                                          std::size_t service_class) {
  return tm_->port_aqm(port, service_class);
}

cognitive::AnalogLoadBalancer* CognitiveSwitch::load_balancer() {
  return lb_ != nullptr ? &lb_->balancer() : nullptr;
}

cognitive::AnalogTrafficClassifier* CognitiveSwitch::classifier() {
  return classify_ != nullptr ? &classify_->classifier() : nullptr;
}

}  // namespace analognf::arch
