#include "analognf/arch/port_runtime.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "analognf/arch/controller.hpp"
#include "analognf/common/thread_pool.hpp"

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

namespace analognf::arch {

// ------------------------------------------------------------ PortRuntime

PortRuntime::PortRuntime(SwitchConfig config, const SharedTables* tables,
                         std::size_t mailbox_depth)
    : switch_(std::move(config), tables),
      mailbox_depth_(mailbox_depth == 0 ? 1 : mailbox_depth),
      worker_([this] { WorkerLoop(); }) {}

PortRuntime::~PortRuntime() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_submit_.notify_all();
  worker_.join();
}

void PortRuntime::Submit(Batch batch) {
  Item item;
  item.batch = std::move(batch);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_state_.wait(lock, [this] { return mailbox_.size() < mailbox_depth_; });
  mailbox_.push_back(std::move(item));
  ++in_flight_;
  lock.unlock();
  cv_submit_.notify_one();
}

void PortRuntime::Apply(Command command) {
  if (!command) {
    throw std::invalid_argument("PortRuntime::Apply: empty command");
  }
  Item item;
  item.command = std::move(command);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_state_.wait(lock, [this] { return mailbox_.size() < mailbox_depth_; });
  mailbox_.push_back(std::move(item));
  ++in_flight_;
  lock.unlock();
  cv_submit_.notify_one();
}

void PortRuntime::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_state_.wait(lock, [this] { return in_flight_ == 0; });
}

void PortRuntime::AttachRing(IngressRing* ring, RingHook hook) {
  if (ring == nullptr) {
    throw std::invalid_argument("PortRuntime::AttachRing: null ring");
  }
  Item item;
  item.ring_op = true;
  item.ring = ring;
  item.hook = std::move(hook);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_state_.wait(lock, [this] { return mailbox_.size() < mailbox_depth_; });
  mailbox_.push_back(std::move(item));
  ++in_flight_;
  lock.unlock();
  cv_submit_.notify_one();
}

void PortRuntime::DetachRing() {
  Item item;
  item.ring_op = true;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_state_.wait(lock, [this] { return mailbox_.size() < mailbox_depth_; });
    mailbox_.push_back(std::move(item));
    ++in_flight_;
  }
  cv_submit_.notify_one();
  // The detach lands behind any in-flight ring batch (the worker is
  // sequential), so idle here implies the worker is done with the ring.
  WaitIdle();
}

void PortRuntime::WorkerLoop() {
  // A process-unique slot keeps this thread's sharded telemetry writes
  // off every other thread's counter cells (exactness, not just
  // contention avoidance).
  slot_.store(ThreadPool::RegisterExternalSlot(), std::memory_order_release);
  // Ring state is worker-local: it only changes by processing a ring_op
  // mailbox item on this thread, so polling it costs no synchronisation.
  IngressRing* ring = nullptr;
  RingHook ring_hook;
  std::size_t idle_spins = 0;
  for (;;) {
    Item item;
    bool have_item = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (ring == nullptr) {
        cv_submit_.wait(lock, [this] { return stop_ || !mailbox_.empty(); });
      }
      if (!mailbox_.empty()) {
        item = std::move(mailbox_.front());
        mailbox_.pop_front();
        have_item = true;
      } else if (stop_) {
        // Stop drains the mailbox but not an attached ring: whoever
        // attached it is responsible for DetachRing() before teardown.
        return;
      }
    }
    if (have_item) {
      cv_state_.notify_all();  // a mailbox slot freed up
      if (item.ring_op) {
        ring = item.ring;
        ring_hook = std::move(item.hook);
      } else if (item.command) {
        item.command(switch_);
      } else {
        switch_.InjectBatch(item.batch.packets, item.batch.now_s);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --in_flight_;
      }
      cv_state_.notify_all();
      idle_spins = 0;
      continue;
    }
    // Mailbox empty, ring attached: run-to-completion poll. Mailbox
    // items re-checked every iteration keep command latency bounded by
    // one batch.
    Batch batch;
    if (ring->TryPop(batch)) {
      const std::uint64_t start_ns = SteadyNowNs();
      switch_.InjectBatch(batch.packets, batch.now_s);
      if (ring_hook) {
        RingBatchInfo info;
        info.packets = batch.packets.size();
        info.enqueue_ns = batch.enqueue_ns;
        info.start_ns = start_ns;
        info.done_ns = SteadyNowNs();
        ring_hook(info);
      }
      idle_spins = 0;
      continue;
    }
    // Ring momentarily empty: spin briefly (producer is usually just
    // behind), then back off to a timed wait so an idle ring does not
    // burn a core. Producers never signal the condvar — the timeout is
    // the re-poll tick.
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_submit_.wait_for(lock, std::chrono::microseconds(200),
                        [this] { return stop_ || !mailbox_.empty(); });
  }
}

// ------------------------------------------------------------ SwitchGroup

SwitchGroup::SwitchGroup(std::size_t ports, SwitchConfig config)
    : tables_(config.digital_technology, config.port_count) {
  if (ports == 0) {
    throw std::invalid_argument("SwitchGroup: zero ports");
  }
  // Widen the default telemetry shard count so every worker's external
  // slot (registered after construction) still gets its own cell. An
  // explicit shard count is left alone.
  if (config.telemetry.shards == 0) {
    config.telemetry.shards = ThreadPool::SlotUpperBound() + ports;
  }
  runtimes_.reserve(ports);
  for (std::size_t p = 0; p < ports; ++p) {
    runtimes_.push_back(std::make_unique<PortRuntime>(config, &tables_));
  }
}

std::size_t SwitchGroup::AddRoute(std::uint32_t dst_ip, int prefix_len,
                                  std::size_t port) {
  return tables_.AddRoute(dst_ip, prefix_len, port);
}

void SwitchGroup::WithdrawRoute(std::size_t route_index) {
  tables_.WithdrawRoute(route_index);
}

std::size_t SwitchGroup::AddFirewallRule(const FirewallPattern& pattern,
                                         bool permit, std::int32_t priority) {
  return tables_.AddFirewallRule(pattern, permit, priority);
}

void SwitchGroup::EraseFirewallRule(std::size_t rule_index) {
  tables_.EraseFirewallRule(rule_index);
}

void SwitchGroup::Commit() { tables_.Commit(); }

void SwitchGroup::ProgramAqmTarget(double target_delay_s,
                                   double max_deviation_s) {
  for (auto& runtime : runtimes_) {
    runtime->Apply([target_delay_s, max_deviation_s](CognitiveSwitch& sw) {
      arch::ProgramAqmTarget(sw, target_delay_s, max_deviation_s);
    });
  }
}

void SwitchGroup::Submit(std::size_t port, std::vector<net::Packet> packets,
                         double now_s) {
  PortRuntime::Batch batch;
  batch.packets = std::move(packets);
  batch.now_s = now_s;
  runtimes_.at(port)->Submit(std::move(batch));
}

void SwitchGroup::WaitIdle() {
  for (auto& runtime : runtimes_) runtime->WaitIdle();
}

SwitchStats SwitchGroup::AggregateStats() const {
  SwitchStats total;
  for (const auto& runtime : runtimes_) {
    const SwitchStats& s = runtime->device().stats();
    total.injected += s.injected;
    total.forwarded += s.forwarded;
    total.parse_errors += s.parse_errors;
    total.firewall_denies += s.firewall_denies;
    total.no_route += s.no_route;
    total.aqm_drops += s.aqm_drops;
    total.queue_full += s.queue_full;
    total.delivered += s.delivered;
  }
  return total;
}

double SwitchGroup::TotalEnergyJ() const {
  double total = 0.0;
  for (const auto& runtime : runtimes_) {
    total += runtime->device().ledger().TotalJ();
  }
  return total;
}

}  // namespace analognf::arch
