#include "analognf/arch/port_runtime.hpp"

#include <stdexcept>
#include <utility>

#include "analognf/arch/controller.hpp"
#include "analognf/common/thread_pool.hpp"

namespace analognf::arch {

// ------------------------------------------------------------ PortRuntime

PortRuntime::PortRuntime(SwitchConfig config, const SharedTables* tables,
                         std::size_t mailbox_depth)
    : switch_(std::move(config), tables),
      mailbox_depth_(mailbox_depth == 0 ? 1 : mailbox_depth),
      worker_([this] { WorkerLoop(); }) {}

PortRuntime::~PortRuntime() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_submit_.notify_all();
  worker_.join();
}

void PortRuntime::Submit(Batch batch) {
  Item item;
  item.batch = std::move(batch);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_state_.wait(lock, [this] { return mailbox_.size() < mailbox_depth_; });
  mailbox_.push_back(std::move(item));
  ++in_flight_;
  lock.unlock();
  cv_submit_.notify_one();
}

void PortRuntime::Apply(Command command) {
  if (!command) {
    throw std::invalid_argument("PortRuntime::Apply: empty command");
  }
  Item item;
  item.command = std::move(command);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_state_.wait(lock, [this] { return mailbox_.size() < mailbox_depth_; });
  mailbox_.push_back(std::move(item));
  ++in_flight_;
  lock.unlock();
  cv_submit_.notify_one();
}

void PortRuntime::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_state_.wait(lock, [this] { return in_flight_ == 0; });
}

void PortRuntime::WorkerLoop() {
  // A process-unique slot keeps this thread's sharded telemetry writes
  // off every other thread's counter cells (exactness, not just
  // contention avoidance).
  slot_.store(ThreadPool::RegisterExternalSlot(), std::memory_order_release);
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_submit_.wait(lock, [this] { return stop_ || !mailbox_.empty(); });
      if (mailbox_.empty()) return;  // stop requested and fully drained
      item = std::move(mailbox_.front());
      mailbox_.pop_front();
    }
    cv_state_.notify_all();  // a mailbox slot freed up
    if (item.command) {
      item.command(switch_);
    } else {
      switch_.InjectBatch(item.batch.packets, item.batch.now_s);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    cv_state_.notify_all();
  }
}

// ------------------------------------------------------------ SwitchGroup

SwitchGroup::SwitchGroup(std::size_t ports, SwitchConfig config)
    : tables_(config.digital_technology, config.port_count) {
  if (ports == 0) {
    throw std::invalid_argument("SwitchGroup: zero ports");
  }
  // Widen the default telemetry shard count so every worker's external
  // slot (registered after construction) still gets its own cell. An
  // explicit shard count is left alone.
  if (config.telemetry.shards == 0) {
    config.telemetry.shards = ThreadPool::SlotUpperBound() + ports;
  }
  runtimes_.reserve(ports);
  for (std::size_t p = 0; p < ports; ++p) {
    runtimes_.push_back(std::make_unique<PortRuntime>(config, &tables_));
  }
}

std::size_t SwitchGroup::AddRoute(std::uint32_t dst_ip, int prefix_len,
                                  std::size_t port) {
  return tables_.AddRoute(dst_ip, prefix_len, port);
}

void SwitchGroup::WithdrawRoute(std::size_t route_index) {
  tables_.WithdrawRoute(route_index);
}

std::size_t SwitchGroup::AddFirewallRule(const FirewallPattern& pattern,
                                         bool permit, std::int32_t priority) {
  return tables_.AddFirewallRule(pattern, permit, priority);
}

void SwitchGroup::EraseFirewallRule(std::size_t rule_index) {
  tables_.EraseFirewallRule(rule_index);
}

void SwitchGroup::Commit() { tables_.Commit(); }

void SwitchGroup::ProgramAqmTarget(double target_delay_s,
                                   double max_deviation_s) {
  for (auto& runtime : runtimes_) {
    runtime->Apply([target_delay_s, max_deviation_s](CognitiveSwitch& sw) {
      arch::ProgramAqmTarget(sw, target_delay_s, max_deviation_s);
    });
  }
}

void SwitchGroup::Submit(std::size_t port, std::vector<net::Packet> packets,
                         double now_s) {
  PortRuntime::Batch batch;
  batch.packets = std::move(packets);
  batch.now_s = now_s;
  runtimes_.at(port)->Submit(std::move(batch));
}

void SwitchGroup::WaitIdle() {
  for (auto& runtime : runtimes_) runtime->WaitIdle();
}

SwitchStats SwitchGroup::AggregateStats() const {
  SwitchStats total;
  for (const auto& runtime : runtimes_) {
    const SwitchStats& s = runtime->device().stats();
    total.injected += s.injected;
    total.forwarded += s.forwarded;
    total.parse_errors += s.parse_errors;
    total.firewall_denies += s.firewall_denies;
    total.no_route += s.no_route;
    total.aqm_drops += s.aqm_drops;
    total.queue_full += s.queue_full;
    total.delivered += s.delivered;
  }
  return total;
}

double SwitchGroup::TotalEnergyJ() const {
  double total = 0.0;
  for (const auto& runtime : runtimes_) {
    total += runtime->device().ledger().TotalJ();
  }
  return total;
}

}  // namespace analognf::arch
