#include "analognf/arch/controller.hpp"

#include "analognf/analog/signal.hpp"
#include "analognf/core/pcam_cell.hpp"

namespace analognf::arch {

std::string ToString(Domain domain) {
  return domain == Domain::kDigital ? "digital" : "analog";
}

CognitiveNetworkController::CognitiveNetworkController(
    CognitiveSwitch& data_plane, unsigned analog_precision_limit_bits)
    : data_plane_(data_plane),
      analog_precision_limit_bits_(analog_precision_limit_bits) {}

FunctionPlacement CognitiveNetworkController::Place(
    const std::string& name, unsigned required_precision_bits) {
  FunctionPlacement placement;
  placement.name = name;
  placement.required_precision_bits = required_precision_bits;
  placement.domain = required_precision_bits <= analog_precision_limit_bits_
                         ? Domain::kAnalog
                         : Domain::kDigital;
  placements_.push_back(placement);
  return placement;
}

void CognitiveNetworkController::InstallRoute(const std::string& dst_dotted,
                                              int prefix_len,
                                              std::size_t port) {
  data_plane_.AddRoute(net::ParseIpv4(dst_dotted), prefix_len, port);
}

void CognitiveNetworkController::InstallFirewallDeny(
    const FirewallPattern& pattern, std::int32_t priority) {
  data_plane_.AddFirewallRule(pattern, /*permit=*/false, priority);
}

void CognitiveNetworkController::InstallFirewallPermit(
    const FirewallPattern& pattern, std::int32_t priority) {
  data_plane_.AddFirewallRule(pattern, /*permit=*/true, priority);
}

void ProgramAqmTarget(CognitiveSwitch& data_plane, double target_delay_s,
                      double max_deviation_s) {
  for (std::size_t p = 0; p < data_plane.port_count(); ++p) {
    for (std::size_t sc = 0;; ++sc) {
      aqm::AnalogAqm* port_aqm = nullptr;
      try {
        port_aqm = data_plane.port_aqm(p, sc);
      } catch (const std::out_of_range&) {
        break;  // past the last service class
      }
      if (port_aqm == nullptr) break;
      const aqm::AnalogAqmConfig& c = port_aqm->config();
      // Reprogram the sojourn base stage for the new bound, through the
      // same update_pCAM action the data-plane table exposes. The feature
      // voltage map is fixed at construction; targets outside the original
      // domain clamp at the rails.
      const double domain_hi = 2.0 * (c.target_delay_s + c.max_deviation_s);
      const analog::LinearMap map(0.0, domain_hi, c.feature_range);
      const double v_lo = map.ToVoltage(target_delay_s - max_deviation_s);
      const double v_hi = map.ToVoltage(target_delay_s + max_deviation_s);
      if (!(v_lo < v_hi)) continue;
      const double v_max = c.feature_range.hi_v;
      port_aqm->table().UpdatePcam(
          "sojourn_time",
          core::PcamParams::MakeTrapezoid(v_lo, v_hi, v_max + 0.5,
                                          v_max + 1.0, 1.0, 0.0));
    }
  }
}

void CognitiveNetworkController::ProgramAqmTarget(double target_delay_s,
                                                  double max_deviation_s) {
  arch::ProgramAqmTarget(data_plane_, target_delay_s, max_deviation_s);
}

}  // namespace analognf::arch
