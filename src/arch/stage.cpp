#include "analognf/arch/stage.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace analognf::arch {

MatchActionStage& StageGraph::Add(std::unique_ptr<MatchActionStage> stage) {
  return Insert(stages_.size(), std::move(stage));
}

MatchActionStage& StageGraph::Insert(std::size_t index,
                                     std::unique_ptr<MatchActionStage> stage) {
  if (stage == nullptr) {
    throw std::invalid_argument("StageGraph: null stage");
  }
  if (index > stages_.size()) {
    throw std::invalid_argument("StageGraph: insert index out of range");
  }
  Bind(*stage);
  MatchActionStage& ref = *stage;
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(index),
                 std::move(stage));
  return ref;
}

void StageGraph::Bind(MatchActionStage& stage) {
  for (const auto& existing : stages_) {
    if (existing->name() == stage.name()) {
      throw std::invalid_argument("StageGraph: duplicate stage name '" +
                                  stage.name() + "'");
    }
  }
  stage.metrics_.energy = stage_ledger_->Meter("stage." + stage.name());
}

void StageGraph::Run(net::PacketBatch& batch) {
  using clock = std::chrono::steady_clock;
  for (const auto& stage : stages_) {
    const auto start = clock::now();
    stage->Process(batch);
    const auto stop = clock::now();
    // Observability only: nothing in the data plane may read this back
    // (the determinism convention), so the timer does not perturb results.
    stage->metrics_.process_ns +=
        std::chrono::duration<double, std::nano>(stop - start).count();
    stage->metrics_.packets += batch.size();
    ++stage->metrics_.invocations;
  }
}

}  // namespace analognf::arch
