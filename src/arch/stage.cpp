#include "analognf/arch/stage.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace analognf::arch {

namespace {

// Per-batch Process() wall time: 16 ns .. ~4.3 s across 28 doublings.
telemetry::HistogramSpec NsSpec() {
  telemetry::HistogramSpec spec;
  spec.first_bound = 16.0;
  spec.growth = 2.0;
  spec.buckets = 28;
  return spec;
}

// Per-batch stage energy in nJ. Analog search energies start around
// femtojoules (1e-6 nJ), so the first bound sits far below a nanojoule
// and quadruples up to ~2.8e5 nJ.
telemetry::HistogramSpec NjSpec() {
  telemetry::HistogramSpec spec;
  spec.first_bound = 1e-9;
  spec.growth = 4.0;
  spec.buckets = 24;
  return spec;
}

std::size_t CountForwarded(const net::PacketBatch& batch) {
  std::size_t n = 0;
  for (net::Verdict v : batch.verdicts) {
    if (v == net::Verdict::kForwarded) ++n;
  }
  return n;
}

}  // namespace

MatchActionStage& StageGraph::Add(std::unique_ptr<MatchActionStage> stage) {
  return Insert(stages_.size(), std::move(stage));
}

MatchActionStage& StageGraph::Insert(std::size_t index,
                                     std::unique_ptr<MatchActionStage> stage) {
  if (stage == nullptr) {
    throw std::invalid_argument("StageGraph: null stage");
  }
  if (index > stages_.size()) {
    throw std::invalid_argument("StageGraph: insert index out of range");
  }
  Bind(*stage);
  MatchActionStage& ref = *stage;
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(index),
                 std::move(stage));
  return ref;
}

void StageGraph::Bind(MatchActionStage& stage) {
  for (const auto& existing : stages_) {
    if (existing->name() == stage.name()) {
      throw std::invalid_argument("StageGraph: duplicate stage name '" +
                                  stage.name() + "'");
    }
  }
  stage.metrics_.energy = stage_ledger_->Meter("stage." + stage.name());
  if (registry_ != nullptr) BindStageTelemetry(stage);
}

void StageGraph::BindTelemetry(telemetry::MetricsRegistry& registry) {
  registry_ = &registry;
  for (const auto& stage : stages_) BindStageTelemetry(*stage);
}

void StageGraph::BindStageTelemetry(MatchActionStage& stage) {
  const std::string prefix = "stage." + stage.name();
  StageTelemetry& t = stage.telemetry_;
  t.packets = registry_->GetCounter(prefix + ".packets");
  t.invocations = registry_->GetCounter(prefix + ".invocations");
  t.drops = registry_->GetCounter(prefix + ".drops");
  t.ns = registry_->GetHistogram(prefix + ".ns", NsSpec());
  t.nj = registry_->GetHistogram(prefix + ".nj", NjSpec());
}

void StageGraph::Run(net::PacketBatch& batch) {
  using clock = std::chrono::steady_clock;
  // The verdict-lane scans and per-stage timing capture only run once a
  // registry is bound, so an un-instrumented graph costs exactly what it
  // did before telemetry existed.
  const bool instrumented = registry_ != nullptr && registry_->enabled();
  if (instrumented) last_stage_ns_.assign(stages_.size(), 0.0);
  std::size_t in_flight =
      instrumented ? CountForwarded(batch) : 0;
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    MatchActionStage& stage = *stages_[si];
    const double energy_before_j =
        instrumented ? stage.metrics_.energy->energy_j : 0.0;
    const auto start = clock::now();
    stage.Process(batch);
    const auto stop = clock::now();
    // Observability only: nothing in the data plane may read this back
    // (the determinism convention), so the timer does not perturb results.
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    stage.metrics_.process_ns += ns;
    stage.metrics_.packets += batch.size();
    ++stage.metrics_.invocations;
    if (instrumented) {
      last_stage_ns_[si] = ns;
      stage.telemetry_.packets.Inc(batch.size());
      stage.telemetry_.invocations.Inc();
      stage.telemetry_.ns.Observe(ns);
      stage.telemetry_.nj.Observe(
          (stage.metrics_.energy->energy_j - energy_before_j) * 1e9);
      const std::size_t still_forwarded = CountForwarded(batch);
      stage.telemetry_.drops.Inc(in_flight - still_forwarded);
      in_flight = still_forwarded;
    }
  }
}

}  // namespace analognf::arch
