#include "analognf/arch/policy_language.hpp"

#include <istream>
#include <sstream>
#include <vector>

#include "analognf/common/units.hpp"

namespace analognf::arch {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ss(line);
  std::string token;
  while (ss >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

// Parses "a.b.c.d/len" into address + prefix length.
void ParseCidr(const std::string& text, std::size_t line_no,
               std::uint32_t* address, int* prefix_len) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw PolicyError(line_no, "expected <addr>/<prefix>, got '" + text +
                                   "'");
  }
  try {
    *address = net::ParseIpv4(text.substr(0, slash));
    *prefix_len = std::stoi(text.substr(slash + 1));
  } catch (const std::exception&) {
    throw PolicyError(line_no, "bad CIDR '" + text + "'");
  }
  if (*prefix_len < 0 || *prefix_len > 32) {
    throw PolicyError(line_no, "prefix length out of range in '" + text +
                                   "'");
  }
}

long ParseInt(const std::string& text, std::size_t line_no,
              const std::string& what, long lo, long hi) {
  long value = 0;
  try {
    std::size_t consumed = 0;
    value = std::stol(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    throw PolicyError(line_no, "bad " + what + " '" + text + "'");
  }
  if (value < lo || value > hi) {
    throw PolicyError(line_no, what + " out of range: '" + text + "'");
  }
  return value;
}

// Parses "<float>ms" into seconds.
double ParseMillis(const std::string& text, std::size_t line_no,
                   const std::string& what) {
  if (text.size() < 3 || text.substr(text.size() - 2) != "ms") {
    throw PolicyError(line_no, what + " must end in 'ms': '" + text + "'");
  }
  try {
    return std::stod(text.substr(0, text.size() - 2)) * analognf::kMilli;
  } catch (const std::exception&) {
    throw PolicyError(line_no, "bad " + what + " '" + text + "'");
  }
}

}  // namespace

std::size_t PolicyInterpreter::Apply(std::istream& program) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t applied = 0;
  while (std::getline(program, line)) {
    ++line_no;
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    ApplyLine(line, line_no);
    ++applied;
  }
  return applied;
}

std::size_t PolicyInterpreter::ApplyText(const std::string& program) {
  std::istringstream ss(program);
  return Apply(ss);
}

void PolicyInterpreter::ApplyLine(const std::string& line,
                                  std::size_t line_no) {
  const std::vector<std::string> t = Tokenize(line);

  if (t[0] == "place") {
    // place <name> precision <bits>
    if (t.size() != 4 || t[2] != "precision") {
      throw PolicyError(line_no, "usage: place <name> precision <bits>");
    }
    const long bits = ParseInt(t[3], line_no, "precision", 1, 64);
    controller_.Place(t[1], static_cast<unsigned>(bits));
    return;
  }

  if (t[0] == "route") {
    // route <cidr> port <n>
    if (t.size() != 4 || t[2] != "port") {
      throw PolicyError(line_no, "usage: route <cidr> port <n>");
    }
    std::uint32_t address = 0;
    int prefix_len = 0;
    ParseCidr(t[1], line_no, &address, &prefix_len);
    const long port = ParseInt(
        t[3], line_no, "port", 0,
        static_cast<long>(controller_.data_plane().port_count()) - 1);
    controller_.data_plane().AddRoute(address, prefix_len,
                                      static_cast<std::size_t>(port));
    return;
  }

  if (t[0] == "permit" || t[0] == "deny") {
    // permit|deny [src <cidr>] [dst <cidr>] [sport <p>] [dport <p>]
    //             [proto <n>] priority <n>
    FirewallPattern pattern;
    bool have_priority = false;
    std::int32_t priority = 0;
    std::size_t i = 1;
    while (i < t.size()) {
      const std::string& key = t[i];
      if (i + 1 >= t.size()) {
        throw PolicyError(line_no, "missing value after '" + key + "'");
      }
      const std::string& value = t[i + 1];
      if (key == "src") {
        ParseCidr(value, line_no, &pattern.src_ip, &pattern.src_prefix_len);
      } else if (key == "dst") {
        ParseCidr(value, line_no, &pattern.dst_ip, &pattern.dst_prefix_len);
      } else if (key == "sport") {
        pattern.src_port = static_cast<std::uint16_t>(
            ParseInt(value, line_no, "sport", 0, 65535));
        pattern.any_src_port = false;
      } else if (key == "dport") {
        pattern.dst_port = static_cast<std::uint16_t>(
            ParseInt(value, line_no, "dport", 0, 65535));
        pattern.any_dst_port = false;
      } else if (key == "proto") {
        pattern.protocol = static_cast<std::uint8_t>(
            ParseInt(value, line_no, "proto", 0, 255));
        pattern.any_protocol = false;
      } else if (key == "priority") {
        priority = static_cast<std::int32_t>(
            ParseInt(value, line_no, "priority", -1000000, 1000000));
        have_priority = true;
      } else {
        throw PolicyError(line_no, "unknown field '" + key + "'");
      }
      i += 2;
    }
    if (!have_priority) {
      throw PolicyError(line_no, "firewall rule requires 'priority <n>'");
    }
    if (t[0] == "permit") {
      controller_.InstallFirewallPermit(pattern, priority);
    } else {
      controller_.InstallFirewallDeny(pattern, priority);
    }
    return;
  }

  if (t[0] == "aqm") {
    // aqm target <float>ms deviation <float>ms
    if (t.size() != 5 || t[1] != "target" || t[3] != "deviation") {
      throw PolicyError(
          line_no, "usage: aqm target <float>ms deviation <float>ms");
    }
    const double target_s = ParseMillis(t[2], line_no, "target");
    const double deviation_s = ParseMillis(t[4], line_no, "deviation");
    if (!(target_s > 0.0) || !(deviation_s > 0.0) ||
        deviation_s >= target_s) {
      throw PolicyError(line_no,
                        "require 0 < deviation < target for the AQM bound");
    }
    controller_.ProgramAqmTarget(target_s, deviation_s);
    return;
  }

  throw PolicyError(line_no, "unknown command '" + t[0] + "'");
}

}  // namespace analognf::arch
