// Lock-free flight recorder: the last N per-batch trace records of a
// stage-graph data plane, for post-mortem dumps.
//
// The data plane appends one BatchTraceRecord per ingress batch; the
// recorder keeps them in a fixed power-of-two ring and overwrites the
// oldest. Any number of threads may Record concurrently: a fetch_add
// assigns the sequence, then a CAS on the per-slot seqlock version
// claims the slot — a writer that loses the claim (another writer owns
// the slot, or a newer sequence already landed there) drops its record
// rather than blocking or tearing an in-flight one. Dump() can run at
// any time; a record that was mid-overwrite during the copy is simply
// skipped. Record contents cross threads as word-wise relaxed atomics,
// so a racing copy is well-defined (and then discarded by the version
// re-check).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace analognf::telemetry {

// One ingress batch through the stage graph. Plain data only: records
// are copied in and out of the ring whole.
struct BatchTraceRecord {
  static constexpr std::size_t kMaxStages = 16;

  std::uint64_t sequence = 0;  // recorder-assigned, monotonically increasing
  double now_s = 0.0;          // batch arrival instant
  std::uint32_t batch_size = 0;

  // Verdict counts over the batch (partition batch_size).
  std::uint32_t forwarded = 0;
  std::uint32_t parse_errors = 0;
  std::uint32_t firewall_denies = 0;
  std::uint32_t no_route = 0;
  std::uint32_t aqm_drops = 0;
  std::uint32_t queue_full = 0;

  // Packets queued across all egress queues after the batch committed.
  std::uint64_t queue_depth = 0;

  // Wall-clock spent in each stage's Process() for this batch; stages
  // beyond kMaxStages are folded into the last slot. total_ns is the
  // whole-graph sum.
  double total_ns = 0.0;
  std::uint32_t stage_count = 0;
  std::array<double, kMaxStages> stage_ns{};

  // pCAM match-probability summary over the batch (classifier
  // confidences and AQM drop probabilities); count == 0 means no analog
  // stage contributed.
  std::uint64_t degree_count = 0;
  double degree_min = 0.0;
  double degree_max = 0.0;
  double degree_sum = 0.0;
};

class FlightRecorder {
 public:
  // `capacity` is rounded up to a power of two; 0 disables the recorder
  // (Record becomes a no-op, Dump returns nothing).
  explicit FlightRecorder(std::size_t capacity);

  bool enabled() const { return !slots_.empty(); }
  std::size_t capacity() const { return slots_.size(); }
  // Total sequences ever claimed, dropped ones included (>= capacity
  // means the ring has wrapped).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  // Records dropped because another writer held or overtook their slot.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Appends a record (rec.sequence is assigned by the recorder). Safe
  // from any number of threads; may drop the record under slot
  // contention (see dropped()).
  void Record(BatchTraceRecord rec);

  // The most recent records, oldest first, at most `max_records` (and at
  // most capacity()). Records overwritten mid-copy are skipped.
  std::vector<BatchTraceRecord> Dump(
      std::size_t max_records = static_cast<std::size_t>(-1)) const;

  void Reset();

 private:
  struct alignas(64) Slot {
    // Seqlock: odd while the slot is being written, 2 * (sequence + 1)
    // once record holds that sequence's data.
    std::atomic<std::uint64_t> version{0};
    BatchTraceRecord record{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace analognf::telemetry
