// The telemetry hub a data-plane component owns: one metrics registry
// plus one flight recorder, built from a single TelemetryConfig, with a
// DumpOnSignal-style one-call post-mortem dump.
#pragma once

#include <iosfwd>

#include "analognf/telemetry/flight_recorder.hpp"
#include "analognf/telemetry/metrics.hpp"

namespace analognf::telemetry {

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  bool enabled() const { return config_.enabled; }
  const TelemetryConfig& config() const { return config_; }

  MetricsRegistry& metrics() { return registry_; }
  const MetricsRegistry& metrics() const { return registry_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  // One-call post-mortem dump (the programmatic stand-in for a
  // dump-on-signal handler): the full Prometheus snapshot followed by
  // the last `max_records` flight-recorder records as JSON.
  void WritePostMortem(std::ostream& out, std::size_t max_records = 8) const;

  // Zeroes every metric and empties the recorder.
  void Reset();

 private:
  TelemetryConfig config_;
  MetricsRegistry registry_;
  FlightRecorder recorder_;
};

}  // namespace analognf::telemetry
