// Runtime metrics for the data plane: counters, gauges and log-spaced
// histograms behind a name-keyed registry.
//
// The batched pCAM/TCAM hot paths must stay contention-free, so every
// counter and histogram is *thread-sharded*: one cache-line-padded cell
// per ThreadPool slot (ThreadPool::CurrentSlot() — 0 for the caller,
// 1 + i for pool worker i), aggregated only when a snapshot is taken.
// Writers touch their own cache line with relaxed atomics; there is no
// cross-thread write sharing on the hot path. Counts are exact while
// each slot has at most one concurrent writer (the ThreadPool contract
// when the shard count covers the pool); beyond that they degrade to
// statistical per-CPU-style counters rather than serializing writers.
//
// Instrumented code holds *handles* (CounterHandle, GaugeHandle,
// HistogramHandle), not metrics: a handle from a disabled registry is
// null and every operation on it is an inlined no-op, so the
// TelemetryConfig off-switch produces zero metric writes. Defining
// ANALOGNF_NO_TELEMETRY additionally compiles every handle operation
// out entirely (the build-time kill switch).
//
// Metric pointers handed out by the registry are stable for the
// registry's lifetime (the same contract as EnergyLedger::Meter).
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analognf/common/thread_pool.hpp"

namespace analognf::telemetry {

// Fixed log-spaced histogram buckets: finite bucket i spans
// (bound[i-1], bound[i]] with bound[i] = first_bound * growth^i, plus an
// implicit overflow bucket. Everything <= first_bound lands in bucket 0.
struct HistogramSpec {
  double first_bound = 1.0;
  double growth = 2.0;
  std::size_t buckets = 24;  // finite buckets; overflow bucket is extra

  void Validate() const;  // throws std::invalid_argument
};

struct TelemetryConfig {
  // The master off-switch: a disabled registry hands out null handles
  // and never allocates a metric.
  bool enabled = true;
  // Counter/histogram shard cells (rounded up to a power of two);
  // 0 = one per slot handed out so far (shared-pool workers + slot 0 +
  // threads registered via ThreadPool::RegisterExternalSlot at registry
  // construction time).
  std::size_t shards = 0;
  // Flight-recorder ring capacity in batch records (rounded up to a
  // power of two); 0 disables the recorder.
  std::size_t flight_recorder_capacity = 256;

  void Validate() const;  // throws std::invalid_argument
};

namespace internal {

// One shard's slot, padded to its own cache line.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

// Portable relaxed add for atomic<double> (fetch_add on floating point
// is C++20 but not yet universal); single-writer-per-cell in practice.
inline void AtomicAdd(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

// Monotonic event count, sharded across ThreadPool slots.
class Counter {
 public:
  explicit Counter(std::size_t shards);

  void Inc(std::uint64_t n = 1) {
    // Relaxed load+store, not fetch_add: each ThreadPool slot owns its
    // cell (given enough shards), so there is no concurrent writer to
    // lose an update to, and the per-packet cost is a plain add instead
    // of a locked RMW. If more threads write than there are cells (a
    // custom pool larger than the shard count, or several non-pool
    // threads sharing slot 0), counts become statistical — never UB,
    // never torn, possibly slightly under.
    std::atomic<std::uint64_t>& cell =
        cells_[ThreadPool::CurrentSlot() & mask_].value;
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }
  std::uint64_t Value() const;
  void Reset();

 private:
  std::vector<internal::CounterCell> cells_;
  std::size_t mask_;
};

// Last-written value (queue depth, table size). Single atomic cell:
// gauges are set at sampling points, not on the per-packet hot path.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { internal::AtomicAdd(value_, v); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-spaced-bucket histogram, sharded across ThreadPool slots.
class Histogram {
 public:
  Histogram(HistogramSpec spec, std::size_t shards);

  void Observe(double x) {
    Shard& s = shards_[ThreadPool::CurrentSlot() & mask_];
    s.counts[BucketOf(x)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAdd(s.sum, x);
  }

  const HistogramSpec& spec() const { return spec_; }
  // Upper bound of finite bucket i (first_bound * growth^i).
  std::vector<double> UpperBounds() const;
  // Aggregated per-bucket counts, size spec().buckets + 1 (last =
  // overflow).
  std::vector<std::uint64_t> BucketCounts() const;
  std::uint64_t Count() const;
  double Sum() const;
  void Reset();

  std::size_t BucketOf(double x) const {
    if (!(x > spec_.first_bound)) return 0;  // also catches NaN
    const double pos = std::log(x / spec_.first_bound) * inv_log_growth_;
    const auto i = static_cast<std::size_t>(std::ceil(pos));
    return i < spec_.buckets ? i : spec_.buckets;
  }

 private:
  struct alignas(64) Shard {
    // Sized at construction to buckets + 1; never resized (vector<atomic>
    // is neither copyable nor movable element-wise).
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  HistogramSpec spec_;
  double inv_log_growth_;
  std::vector<Shard> shards_;
  std::size_t mask_;
};

// ---------------------------------------------------------------- handles
// Null-safe views instrumented code holds. A default-constructed (or
// disabled-registry) handle is inert; all operations inline to a single
// predictable branch — or to nothing under ANALOGNF_NO_TELEMETRY.

class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter* c) : c_(c) {}
  void Inc(std::uint64_t n = 1) const {
#ifndef ANALOGNF_NO_TELEMETRY
    if (c_ != nullptr) c_->Inc(n);
#else
    (void)n;
#endif
  }
  bool bound() const { return c_ != nullptr; }

 private:
  Counter* c_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge* g) : g_(g) {}
  void Set(double v) const {
#ifndef ANALOGNF_NO_TELEMETRY
    if (g_ != nullptr) g_->Set(v);
#else
    (void)v;
#endif
  }
  void Add(double v) const {
#ifndef ANALOGNF_NO_TELEMETRY
    if (g_ != nullptr) g_->Add(v);
#else
    (void)v;
#endif
  }
  bool bound() const { return g_ != nullptr; }

 private:
  Gauge* g_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(Histogram* h) : h_(h) {}
  void Observe(double x) const {
#ifndef ANALOGNF_NO_TELEMETRY
    if (h_ != nullptr) h_->Observe(x);
#else
    (void)x;
#endif
  }
  bool bound() const { return h_ != nullptr; }

 private:
  Histogram* h_ = nullptr;
};

// Counters a search engine (pCAM, TCAM, LPM) reports into. All optional:
// engines run un-instrumented until a table binds them to a registry.
struct SearchEngineCounters {
  CounterHandle searches;      // probes evaluated
  CounterHandle rows_scanned;  // stored rows (or trie nodes) evaluated
  CounterHandle recompiles;    // snapshot compiles / dirty-row refreshes
  // Pruned-tier TCAM engines only: rows that survived the bitmap
  // intersection and were actually verified, and the fraction of stored
  // rows the bitmaps pruned away on the most recent search (or batch).
  CounterHandle candidates;
  GaugeHandle prune_ratio;
};

// --------------------------------------------------------------- snapshot
// Point-in-time aggregation of a registry, ordered by metric name.

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> upper_bounds;     // finite bucket bounds, ascending
  std::vector<std::uint64_t> counts;    // size upper_bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

// ---------------------------------------------------------------- registry

class MetricsRegistry {
 public:
  explicit MetricsRegistry(TelemetryConfig config = {});

  bool enabled() const { return config_.enabled; }
  const TelemetryConfig& config() const { return config_; }
  // Resolved shard-cell count (power of two).
  std::size_t shards() const { return shards_; }

  // Find-or-create. Handles and the metrics behind them stay valid for
  // the registry's lifetime; a disabled registry returns null handles
  // and allocates nothing. Registering a name under two different
  // metric kinds throws std::invalid_argument. Re-getting a histogram
  // keeps the first registration's spec.
  CounterHandle GetCounter(const std::string& name);
  GaugeHandle GetGauge(const std::string& name);
  HistogramHandle GetHistogram(const std::string& name,
                               HistogramSpec spec = {});

  // Aggregates every metric (sums shard cells). Safe to call while
  // writers are active: counts are relaxed-atomic reads.
  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (registrations survive).
  void Reset();

 private:
  void CheckNameFree(const std::string& name, int kind) const;

  TelemetryConfig config_;
  std::size_t shards_ = 1;
  mutable std::mutex mutex_;  // guards the maps, not the cells
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Registers the canonical `<prefix>.searches` / `<prefix>.rows_scanned`
// / `<prefix>.recompiles` counter triple for a search engine, plus the
// `<prefix>.candidates` counter and `<prefix>.prune_ratio` gauge the
// pruned TCAM match tier reports into (zero for other engines).
inline SearchEngineCounters MakeSearchEngineCounters(
    MetricsRegistry& registry, const std::string& prefix) {
  SearchEngineCounters counters;
  counters.searches = registry.GetCounter(prefix + ".searches");
  counters.rows_scanned = registry.GetCounter(prefix + ".rows_scanned");
  counters.recompiles = registry.GetCounter(prefix + ".recompiles");
  counters.candidates = registry.GetCounter(prefix + ".candidates");
  counters.prune_ratio = registry.GetGauge(prefix + ".prune_ratio");
  return counters;
}

// Control-plane commit meters a table reports into on every Commit()
// (see common/table_delta.hpp). All optional, like SearchEngineCounters.
struct TableCommitCounters {
  CounterHandle commit_ns;         // cumulative wall ns spent committing
  CounterHandle delta_rows;        // rows patched by delta commits
  CounterHandle full_recompiles;   // commits that rebuilt from scratch
};

// Registers the canonical `table.commit_ns` / `table.delta_rows` /
// `table.full_recompiles` meters. Every table of one registry shares
// the same three counters (GetCounter deduplicates by name), so the
// flight recorder sees the data plane's total control-plane commit cost
// in one place regardless of which engine paid it.
inline TableCommitCounters MakeTableCommitCounters(
    MetricsRegistry& registry) {
  TableCommitCounters counters;
  counters.commit_ns = registry.GetCounter("table.commit_ns");
  counters.delta_rows = registry.GetCounter("table.delta_rows");
  counters.full_recompiles = registry.GetCounter("table.full_recompiles");
  return counters;
}

}  // namespace analognf::telemetry
