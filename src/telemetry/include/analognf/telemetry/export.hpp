// Snapshot exporters: Prometheus text exposition format and JSON.
//
// Both exporters render from the same MetricsSnapshot and format every
// floating-point value through the same max-precision printer, so the
// two documents carry identical values (the differential round-trip
// test asserts it). Flight-recorder dumps export as JSON only.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analognf/telemetry/flight_recorder.hpp"
#include "analognf/telemetry/metrics.hpp"

namespace analognf::telemetry {

// Prometheus metric name for a registry metric name: characters outside
// [a-zA-Z0-9_:] become '_' and the result is prefixed "analognf_"
// (e.g. "stage.parse.packets" -> "analognf_stage_parse_packets").
std::string PrometheusName(const std::string& name);

// Round-trippable float rendering (max 17 significant digits); integers
// render without an exponent. Shared by both exporters.
std::string FormatValue(double v);

// Prometheus text exposition format: counters and gauges as single
// samples, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

// JSON document: {"counters": {...}, "gauges": {...}, "histograms":
// {name: {"upper_bounds": [...], "counts": [...], "count": n, "sum": s}}.
// Histogram "counts" are per-bucket (not cumulative); the final entry is
// the overflow bucket.
std::string ToJson(const MetricsSnapshot& snapshot);

// JSON array of flight-recorder records, oldest first.
std::string ToJson(const std::vector<BatchTraceRecord>& records);

}  // namespace analognf::telemetry
