#include "analognf/telemetry/metrics.hpp"

#include <stdexcept>

namespace analognf::telemetry {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void HistogramSpec::Validate() const {
  if (!(first_bound > 0.0)) {
    throw std::invalid_argument("HistogramSpec: first_bound must be > 0");
  }
  if (!(growth > 1.0)) {
    throw std::invalid_argument("HistogramSpec: growth must be > 1");
  }
  if (buckets == 0) {
    throw std::invalid_argument("HistogramSpec: buckets must be >= 1");
  }
}

void TelemetryConfig::Validate() const {
  // All fields are self-clamping (shard/capacity 0 have defined
  // meanings); nothing to reject today. Kept so config structs stay
  // uniform and future fields have a home.
}

// ---------------------------------------------------------------- Counter

Counter::Counter(std::size_t shards)
    : cells_(RoundUpPow2(shards == 0 ? 1 : shards)),
      mask_(cells_.size() - 1) {}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const internal::CounterCell& c : cells_) {
    total += c.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::CounterCell& c : cells_) {
    c.value.store(0, std::memory_order_relaxed);
  }
}

// -------------------------------------------------------------- Histogram

Histogram::Histogram(HistogramSpec spec, std::size_t shards)
    : spec_(spec),
      inv_log_growth_(1.0 / std::log(spec.growth)),
      shards_(RoundUpPow2(shards == 0 ? 1 : shards)),
      mask_(shards_.size() - 1) {
  spec_.Validate();
  for (Shard& s : shards_) {
    s.counts = std::vector<std::atomic<std::uint64_t>>(spec_.buckets + 1);
  }
}

std::vector<double> Histogram::UpperBounds() const {
  std::vector<double> bounds(spec_.buckets);
  double b = spec_.first_bound;
  for (std::size_t i = 0; i < spec_.buckets; ++i) {
    bounds[i] = b;
    b *= spec_.growth;
  }
  return bounds;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> totals(spec_.buckets + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < totals.size(); ++i) {
      totals[i] += s.counts[i].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (std::atomic<std::uint64_t>& c : s.counts) {
      c.store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- registry

MetricsRegistry::MetricsRegistry(TelemetryConfig config) : config_(config) {
  config_.Validate();
  // Default shard count covers every slot handed out so far: shared-pool
  // workers, slot 0, and threads registered via RegisterExternalSlot.
  // Register external threads before building the registry (the port
  // runtime does) or pass config.shards explicitly.
  const std::size_t want =
      config_.shards != 0 ? config_.shards : ThreadPool::SlotUpperBound();
  shards_ = RoundUpPow2(want);
}

void MetricsRegistry::CheckNameFree(const std::string& name, int kind) const {
  // kind: 0 counter, 1 gauge, 2 histogram. Caller holds mutex_.
  if ((kind != 0 && counters_.count(name) != 0) ||
      (kind != 1 && gauges_.count(name) != 0) ||
      (kind != 2 && histograms_.count(name) != 0)) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
}

CounterHandle MetricsRegistry::GetCounter(const std::string& name) {
  if (!config_.enabled) return CounterHandle{};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    CheckNameFree(name, 0);
    it = counters_.emplace(name, std::make_unique<Counter>(shards_)).first;
  }
  return CounterHandle{it->second.get()};
}

GaugeHandle MetricsRegistry::GetGauge(const std::string& name) {
  if (!config_.enabled) return GaugeHandle{};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    CheckNameFree(name, 1);
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return GaugeHandle{it->second.get()};
}

HistogramHandle MetricsRegistry::GetHistogram(const std::string& name,
                                              HistogramSpec spec) {
  if (!config_.enabled) return HistogramHandle{};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    CheckNameFree(name, 2);
    it = histograms_.emplace(name, std::make_unique<Histogram>(spec, shards_))
             .first;
  }
  return HistogramHandle{it->second.get()};
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.upper_bounds = hist->UpperBounds();
    s.counts = hist->BucketCounts();
    s.count = hist->Count();
    s.sum = hist->Sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace analognf::telemetry
