#include "analognf/telemetry/flight_recorder.hpp"

#include <algorithm>
#include <type_traits>

namespace analognf::telemetry {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

static_assert(std::is_trivially_copyable_v<BatchTraceRecord>,
              "records are copied in and out of the ring as raw words");
static_assert(sizeof(BatchTraceRecord) % sizeof(std::uint64_t) == 0 &&
                  alignof(BatchTraceRecord) >= alignof(std::uint64_t),
              "word-wise ring copies require 8-byte-aligned records");

constexpr std::size_t kRecordWords =
    sizeof(BatchTraceRecord) / sizeof(std::uint64_t);

// Word-wise relaxed stores into the ring slot. The seqlock version makes
// the record's *content* consistent; per-word atomicity is what lets a
// reader race the copy without undefined behaviour (the torn copy is
// then discarded by the version re-check).
void StoreRecord(BatchTraceRecord& dst, const BatchTraceRecord& src) {
  auto* d = reinterpret_cast<std::uint64_t*>(&dst);
  const auto* s = reinterpret_cast<const std::uint64_t*>(&src);
  for (std::size_t i = 0; i < kRecordWords; ++i) {
    std::atomic_ref<std::uint64_t>(d[i]).store(s[i],
                                               std::memory_order_relaxed);
  }
}

// Word-wise relaxed loads out of the ring slot into a private copy.
void LoadRecord(BatchTraceRecord& dst, const BatchTraceRecord& src) {
  auto* d = reinterpret_cast<std::uint64_t*>(&dst);
  // atomic_ref needs a mutable lvalue even for loads (const support is
  // post-C++20); the slot is only ever read through it here.
  auto* s = reinterpret_cast<std::uint64_t*>(
      const_cast<BatchTraceRecord*>(&src));
  for (std::size_t i = 0; i < kRecordWords; ++i) {
    d[i] = std::atomic_ref<std::uint64_t>(s[i]).load(std::memory_order_relaxed);
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity == 0) return;
  slots_ = std::vector<Slot>(RoundUpPow2(capacity));
  mask_ = slots_.size() - 1;
}

void FlightRecorder::Record(BatchTraceRecord rec) {
  if (slots_.empty()) return;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[static_cast<std::size_t>(seq) & mask_];
  // Claim the slot before touching the record. The ring is lossy under
  // writer contention: if another writer owns the slot (odd version), or
  // already published a newer sequence into it (version > 2 * seq), or
  // wins the CAS race, this record is dropped — a recorder must never
  // block the data plane, and a lost trace record beats a torn one.
  std::uint64_t cur = slot.version.load(std::memory_order_relaxed);
  if ((cur & 1) != 0 || cur > 2 * seq ||
      !slot.version.compare_exchange_strong(cur, 2 * seq + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rec.sequence = seq;
  StoreRecord(slot.record, rec);
  slot.version.store(2 * (seq + 1), std::memory_order_release);
}

std::vector<BatchTraceRecord> FlightRecorder::Dump(
    std::size_t max_records) const {
  std::vector<BatchTraceRecord> out;
  if (slots_.empty()) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t window =
      std::min<std::uint64_t>({head, slots_.size(), max_records});
  out.reserve(static_cast<std::size_t>(window));
  for (std::uint64_t seq = head - window; seq < head; ++seq) {
    const Slot& slot = slots_[static_cast<std::size_t>(seq) & mask_];
    const std::uint64_t expect = 2 * (seq + 1);
    if (slot.version.load(std::memory_order_acquire) != expect) continue;
    BatchTraceRecord copy;
    LoadRecord(copy, slot.record);
    // Re-check after the copy: if a writer claimed the slot mid-copy the
    // version moved on and the (possibly torn) copy is discarded.
    if (slot.version.load(std::memory_order_acquire) != expect) continue;
    out.push_back(copy);
  }
  return out;
}

void FlightRecorder::Reset() {
  for (Slot& slot : slots_) {
    slot.version.store(0, std::memory_order_relaxed);
    slot.record = BatchTraceRecord{};
  }
  dropped_.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_release);
}

}  // namespace analognf::telemetry
