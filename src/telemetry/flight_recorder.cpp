#include "analognf/telemetry/flight_recorder.hpp"

#include <algorithm>

namespace analognf::telemetry {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity == 0) return;
  slots_ = std::vector<Slot>(RoundUpPow2(capacity));
  mask_ = slots_.size() - 1;
}

void FlightRecorder::Record(BatchTraceRecord rec) {
  if (slots_.empty()) return;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[static_cast<std::size_t>(seq) & mask_];
  // Odd = write in progress: readers that observe it drop the slot.
  slot.version.store(2 * seq + 1, std::memory_order_release);
  rec.sequence = seq;
  slot.record = rec;
  slot.version.store(2 * (seq + 1), std::memory_order_release);
}

std::vector<BatchTraceRecord> FlightRecorder::Dump(
    std::size_t max_records) const {
  std::vector<BatchTraceRecord> out;
  if (slots_.empty()) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t window =
      std::min<std::uint64_t>({head, slots_.size(), max_records});
  out.reserve(static_cast<std::size_t>(window));
  for (std::uint64_t seq = head - window; seq < head; ++seq) {
    const Slot& slot = slots_[static_cast<std::size_t>(seq) & mask_];
    const std::uint64_t expect = 2 * (seq + 1);
    if (slot.version.load(std::memory_order_acquire) != expect) continue;
    BatchTraceRecord copy = slot.record;
    // Re-check after the copy: if a writer claimed the slot mid-copy the
    // version moved on and the (possibly torn) copy is discarded.
    if (slot.version.load(std::memory_order_acquire) != expect) continue;
    out.push_back(copy);
  }
  return out;
}

void FlightRecorder::Reset() {
  for (Slot& slot : slots_) {
    slot.version.store(0, std::memory_order_relaxed);
    slot.record = BatchTraceRecord{};
  }
  head_.store(0, std::memory_order_release);
}

}  // namespace analognf::telemetry
