#include "analognf/telemetry/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace analognf::telemetry {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "analognf_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1.0e15) {
    // Integral values print exactly, without exponent or trailing zeros,
    // so both exporters agree byte-for-byte on counts.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatValue(static_cast<double>(c.value)) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatValue(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += name + "_bucket{le=\"" + FormatValue(h.upper_bounds[i]) +
             "\"} " + FormatValue(static_cast<double>(cumulative)) + "\n";
    }
    cumulative += h.counts.back();  // overflow bucket
    out += name + "_bucket{le=\"+Inf\"} " +
           FormatValue(static_cast<double>(cumulative)) + "\n";
    out += name + "_sum " + FormatValue(h.sum) + "\n";
    out += name + "_count " + FormatValue(static_cast<double>(h.count)) + "\n";
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(out, c.name);
    out += "\": " + FormatValue(static_cast<double>(c.value));
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(out, g.name);
    out += "\": " + FormatValue(g.value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(out, h.name);
    out += "\": {\"upper_bounds\": [";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      if (b != 0) out += ", ";
      out += FormatValue(h.upper_bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) out += ", ";
      out += FormatValue(static_cast<double>(h.counts[b]));
    }
    out += "], \"count\": " + FormatValue(static_cast<double>(h.count));
    out += ", \"sum\": " + FormatValue(h.sum) + "}";
  }
  out += snapshot.histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string ToJson(const std::vector<BatchTraceRecord>& records) {
  std::string out = "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BatchTraceRecord& r = records[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"sequence\": " + FormatValue(static_cast<double>(r.sequence));
    out += ", \"now_s\": " + FormatValue(r.now_s);
    out += ", \"batch_size\": " + FormatValue(r.batch_size);
    out += ", \"forwarded\": " + FormatValue(r.forwarded);
    out += ", \"parse_errors\": " + FormatValue(r.parse_errors);
    out += ", \"firewall_denies\": " + FormatValue(r.firewall_denies);
    out += ", \"no_route\": " + FormatValue(r.no_route);
    out += ", \"aqm_drops\": " + FormatValue(r.aqm_drops);
    out += ", \"queue_full\": " + FormatValue(r.queue_full);
    out += ", \"queue_depth\": " +
           FormatValue(static_cast<double>(r.queue_depth));
    out += ", \"total_ns\": " + FormatValue(r.total_ns);
    out += ", \"stage_count\": " +
           FormatValue(static_cast<double>(r.stage_count));
    // stage_count is the true stage total; the array folds any overflow
    // into its last slot, so never walk past it.
    const auto filled = static_cast<std::uint32_t>(
        std::min<std::size_t>(r.stage_count, r.stage_ns.size()));
    out += ", \"stage_ns\": [";
    for (std::uint32_t s = 0; s < filled; ++s) {
      if (s != 0) out += ", ";
      out += FormatValue(r.stage_ns[s]);
    }
    out += "]";
    if (r.degree_count != 0) {
      out += ", \"pcam_degrees\": {\"count\": " +
             FormatValue(static_cast<double>(r.degree_count));
      out += ", \"min\": " + FormatValue(r.degree_min);
      out += ", \"mean\": " +
             FormatValue(r.degree_sum / static_cast<double>(r.degree_count));
      out += ", \"max\": " + FormatValue(r.degree_max) + "}";
    }
    out += "}";
  }
  out += records.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace analognf::telemetry
