#include "analognf/telemetry/telemetry.hpp"

#include <ostream>

#include "analognf/telemetry/export.hpp"

namespace analognf::telemetry {

Telemetry::Telemetry(TelemetryConfig config)
    : config_([&] {
        config.Validate();
        return config;
      }()),
      registry_(config_),
      recorder_(config_.enabled ? config_.flight_recorder_capacity : 0) {}

void Telemetry::WritePostMortem(std::ostream& out,
                                std::size_t max_records) const {
  out << "# ---- metrics snapshot (Prometheus text format) ----\n";
  out << ToPrometheusText(registry_.Snapshot());
  out << "# ---- flight recorder (last " << max_records << " batches) ----\n";
  out << ToJson(recorder_.Dump(max_records));
}

void Telemetry::Reset() {
  registry_.Reset();
  recorder_.Reset();
}

}  // namespace analognf::telemetry
