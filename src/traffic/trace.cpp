#include "analognf/traffic/trace.hpp"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace analognf::traffic {
namespace {

// "ANFT" little-endian.
constexpr std::uint32_t kMagic = 0x54464e41u;
constexpr std::uint32_t kVersion = 1;

void PutU32(std::ostream& out, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 4);
}

void PutU64(std::ostream& out, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 8);
}

// Bit-pattern encoding: the replayed double is the recorded double,
// including every last mantissa bit (memcpy, no narrowing).
void PutF64(std::ostream& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

std::uint32_t GetU32(std::istream& in) {
  std::uint8_t b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw std::runtime_error("trace: truncated input");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(std::istream& in) {
  std::uint8_t b[8];
  in.read(reinterpret_cast<char*>(b), 8);
  if (!in) throw std::runtime_error("trace: truncated input");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

double GetF64(std::istream& in) {
  const std::uint64_t bits = GetU64(in);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

void WriteTrace(std::ostream& out, const Trace& trace) {
  trace.population.Validate();
  PutU32(out, kMagic);
  PutU32(out, kVersion);
  PutU64(out, trace.population.flows);
  PutU64(out, trace.population.seed);
  PutU32(out, trace.population.dst_base);
  PutU32(out, trace.population.dst_hosts);
  PutF64(out, trace.population.udp_fraction);
  PutF64(out, trace.population.ect_fraction);
  PutF64(out, trace.population.high_priority_fraction);
  PutU64(out, trace.records.size());
  for (const TraceRecord& r : trace.records) {
    PutF64(out, r.arrival_s);
    PutU64(out, r.flow);
    PutU32(out, r.frame_bytes);
  }
  if (!out) throw std::runtime_error("trace: write failed");
}

Trace ReadTrace(std::istream& in) {
  if (GetU32(in) != kMagic) throw std::runtime_error("trace: bad magic");
  const std::uint32_t version = GetU32(in);
  if (version != kVersion) {
    throw std::runtime_error("trace: unsupported version " +
                             std::to_string(version));
  }
  Trace trace;
  trace.population.flows = GetU64(in);
  trace.population.seed = GetU64(in);
  trace.population.dst_base = GetU32(in);
  trace.population.dst_hosts = GetU32(in);
  trace.population.udp_fraction = GetF64(in);
  trace.population.ect_fraction = GetF64(in);
  trace.population.high_priority_fraction = GetF64(in);
  trace.population.Validate();
  const std::uint64_t count = GetU64(in);
  // 20 bytes per record; reject sizes the stream cannot possibly hold
  // rather than bad_alloc on a corrupt count.
  if (count > std::numeric_limits<std::uint64_t>::max() / 32) {
    throw std::runtime_error("trace: implausible record count");
  }
  trace.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.arrival_s = GetF64(in);
    r.flow = GetU64(in);
    r.frame_bytes = GetU32(in);
    if (r.flow >= trace.population.flows) {
      throw std::runtime_error("trace: flow index out of population");
    }
    trace.records.push_back(r);
  }
  return trace;
}

}  // namespace analognf::traffic
