#include "analognf/traffic/workload.hpp"

#include <stdexcept>

namespace analognf::traffic {
namespace {

void PutU16At(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void PutU32At(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

// Maps a 64-bit hash lane to [0, 1) the same way RandomStream does, so
// per-flow trait fractions are unbiased.
double UnitFromHash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void PopulationConfig::Validate() const {
  if (flows == 0) {
    throw std::invalid_argument("PopulationConfig: flows == 0");
  }
  if (dst_hosts == 0) {
    throw std::invalid_argument("PopulationConfig: dst_hosts == 0");
  }
  if (!(udp_fraction >= 0.0 && udp_fraction <= 1.0) ||
      !(ect_fraction >= 0.0 && ect_fraction <= 1.0) ||
      !(high_priority_fraction >= 0.0 && high_priority_fraction <= 1.0)) {
    throw std::invalid_argument("PopulationConfig: fraction out of [0,1]");
  }
}

FlowPopulation::FlowPopulation(PopulationConfig config)
    : config_(config) {
  config_.Validate();
}

FlowTuple FlowPopulation::Tuple(std::uint64_t flow) const {
  // Four independent hash lanes from one SplitMix64 stream keyed by
  // (seed, flow): addresses/ports, protocol, ECN, priority.
  analognf::SplitMix64 sm(config_.seed ^ (flow * 0x9e3779b97f4a7c15ULL) ^
                          (flow >> 32));
  const std::uint64_t h0 = sm.Next();
  const std::uint64_t h1 = sm.Next();
  const std::uint64_t h2 = sm.Next();

  FlowTuple t;
  // Clients spread over 100.64.0.0/10-style space; avoid 0.0.0.0.
  t.src_ip = 0x64400000u | (static_cast<std::uint32_t>(h0) & 0x003fffffu) | 1u;
  t.dst_ip = config_.dst_base +
             static_cast<std::uint32_t>((h0 >> 32) % config_.dst_hosts);
  t.src_port = static_cast<std::uint16_t>(1024 + ((h1 >> 0) & 0xffff) % 64511);
  const bool udp = UnitFromHash(h1) < config_.udp_fraction;
  t.protocol = udp ? net::kIpProtoUdp : net::kIpProtoTcp;
  t.dst_port = udp ? 53 : 443;
  t.ect = UnitFromHash(h2) < config_.ect_fraction;
  // Priority 4..7 for high-priority flows, 0..3 otherwise; DSCP carries
  // it in the class-selector bits (p << 3).
  const bool high = UnitFromHash(sm.Next()) < config_.high_priority_fraction;
  const auto sub = static_cast<std::uint8_t>((h2 >> 32) & 0x3);
  const auto priority = static_cast<std::uint8_t>(high ? 4 + sub : sub);
  t.dscp = static_cast<std::uint8_t>(priority << 3);
  return t;
}

// ------------------------------------------------------------- arrivals

void ArrivalConfig::Validate() const {
  if (!(rate_pps > 0.0)) {
    throw std::invalid_argument("ArrivalConfig: rate_pps <= 0");
  }
  if (!(burst_factor > 0.0)) {
    throw std::invalid_argument("ArrivalConfig: burst_factor <= 0");
  }
  if (!(mean_calm_dwell_s > 0.0) || !(mean_burst_dwell_s > 0.0)) {
    throw std::invalid_argument("ArrivalConfig: dwell times must be positive");
  }
}

ArrivalProcess::ArrivalProcess(ArrivalConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  config_.Validate();
  if (config_.process != ArrivalConfig::Process::kPoisson) {
    state_ends_s_ = rng_.NextExponential(1.0 / config_.mean_calm_dwell_s);
  }
}

double ArrivalProcess::Next() {
  if (config_.process == ArrivalConfig::Process::kPoisson) {
    now_s_ += rng_.NextExponential(config_.rate_pps);
    return now_s_;
  }
  // kMmpp and kOnOff share the two-state machine; they differ only in
  // the calm-state rate (reduced vs zero). State transitions before the
  // candidate arrival discard it — exact by memorylessness (the same
  // construction as net::MmppGenerator).
  for (;;) {
    const bool on_off = config_.process == ArrivalConfig::Process::kOnOff;
    const double burst_rate = config_.rate_pps * config_.burst_factor;
    const double calm_rate = on_off ? 0.0 : config_.rate_pps;
    const double rate = in_burst_ ? burst_rate : calm_rate;
    if (rate > 0.0) {
      const double candidate = now_s_ + rng_.NextExponential(rate);
      if (candidate <= state_ends_s_) {
        now_s_ = candidate;
        return now_s_;
      }
    }
    now_s_ = state_ends_s_;
    in_burst_ = !in_burst_;
    const double dwell =
        in_burst_ ? config_.mean_burst_dwell_s : config_.mean_calm_dwell_s;
    state_ends_s_ = now_s_ + rng_.NextExponential(1.0 / dwell);
  }
}

// ------------------------------------------------------------- workload

void WorkloadConfig::Validate() const {
  population.Validate();
  arrivals.Validate();
  if (!(zipf_s >= 0.0)) {
    throw std::invalid_argument("WorkloadConfig: zipf_s < 0");
  }
  if (sizes == Sizes::kFixed && fixed_size_bytes < kMinFrameBytes) {
    throw std::invalid_argument("WorkloadConfig: fixed size below minimum");
  }
}

// ------------------------------------------------------------ synthesis

void SynthesizeFrame(const FlowTuple& tuple, std::uint32_t frame_bytes,
                     std::vector<std::uint8_t>& out) {
  const bool tcp = tuple.protocol == net::kIpProtoTcp;
  const std::uint32_t l4_size =
      tcp ? net::TcpHeader::kSize : net::UdpHeader::kSize;
  const std::uint32_t min_bytes =
      net::EthernetHeader::kSize + net::Ipv4Header::kSize + l4_size;
  if (frame_bytes < min_bytes) frame_bytes = min_bytes;
  const std::uint32_t payload = frame_bytes - min_bytes;

  out.assign(frame_bytes, 0xab);  // payload fill matches PacketBuilder
  std::uint8_t* p = out.data();

  // Ethernet II. Locally-administered MACs derived from the IPs keep
  // frames distinguishable in pcap dumps without per-flow state.
  p[0] = 0x02;
  PutU32At(p + 1, tuple.dst_ip);
  p[5] = 0x01;
  p[6] = 0x02;
  PutU32At(p + 7, tuple.src_ip);
  p[11] = 0x02;
  PutU16At(p + 12, net::kEtherTypeIpv4);
  p += net::EthernetHeader::kSize;

  // IPv4, version 4 / IHL 5, DF clear, matching PacketBuilder's layout.
  const auto total_length = static_cast<std::uint16_t>(
      net::Ipv4Header::kSize + l4_size + payload);
  p[0] = 0x45;
  p[1] = static_cast<std::uint8_t>((tuple.dscp << 2) | (tuple.ect ? 2 : 0));
  PutU16At(p + 2, total_length);
  PutU16At(p + 4, 0);  // identification
  PutU16At(p + 6, 0);  // flags / fragment offset
  p[8] = 64;           // ttl
  p[9] = tuple.protocol;
  PutU16At(p + 10, 0);  // checksum placeholder
  PutU32At(p + 12, tuple.src_ip);
  PutU32At(p + 16, tuple.dst_ip);
  PutU16At(p + 10, net::InternetChecksum(p, net::Ipv4Header::kSize));
  p += net::Ipv4Header::kSize;

  if (tcp) {
    PutU16At(p + 0, tuple.src_port);
    PutU16At(p + 2, tuple.dst_port);
    PutU32At(p + 4, 0);   // seq
    PutU32At(p + 8, 0);   // ack
    p[12] = 0x50;         // data offset 5 words
    p[13] = 0x10;         // ACK flag
    PutU16At(p + 14, 65535);  // window
    PutU16At(p + 16, 0);  // checksum (not modelled)
    PutU16At(p + 18, 0);  // urgent pointer
  } else {
    PutU16At(p + 0, tuple.src_port);
    PutU16At(p + 2, tuple.dst_port);
    PutU16At(p + 4, static_cast<std::uint16_t>(net::UdpHeader::kSize +
                                               payload));
    PutU16At(p + 6, 0);  // optional checksum
  }
}

net::Packet SynthesizePacket(const FlowTuple& tuple,
                             std::uint32_t frame_bytes) {
  std::vector<std::uint8_t> bytes;
  SynthesizeFrame(tuple, frame_bytes, bytes);
  return net::Packet(std::move(bytes));
}

}  // namespace analognf::traffic
