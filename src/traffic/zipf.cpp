#include "analognf/traffic/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace analognf::traffic {
namespace {

// log1p(x)/x with a series expansion near 0 (Hörmann & Derflinger's
// helper1): keeps hIntegralInverse smooth as s -> 1.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * 0.5 + x * x / 3.0;
}

// expm1(x)/x with a series expansion near 0 (helper2).
double Helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 + x * x / 6.0;
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  if (!(s >= 0.0)) throw std::invalid_argument("ZipfSampler: s < 0");
  if (s_ > 0.0) {
    h_integral_x1_ = HIntegral(1.5) - 1.0;
    h_integral_n_ = HIntegral(static_cast<double>(n_) + 0.5);
    threshold_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
  }
}

// Integral of h(x) = x^(-s): (x^(1-s) - 1) / (1 - s), continuous in s
// (log(x) at s == 1) via helper2.
double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::H(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // numerical round-off guard (as in the paper)
  return std::exp(Helper1(t) * x);
}

std::uint64_t ZipfSampler::Sample(analognf::RandomStream& rng) const {
  if (s_ == 0.0) return rng.NextIndex(n_);
  for (;;) {
    const double u =
        h_integral_n_ + rng.NextUniform() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    const double n_d = static_cast<double>(n_);
    if (k > n_d) k = n_d;
    if (k - x <= threshold_ || u >= HIntegral(k + 0.5) - H(k)) {
      return static_cast<std::uint64_t>(k) - 1;  // 0-based rank
    }
  }
}

double ZipfSampler::Probability(std::uint64_t k) const {
  if (k >= n_) return 0.0;
  // O(n) normalisation, computed on demand — this accessor exists for
  // distribution tests, not the sampling hot path.
  if (harmonic_ == 0.0) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i) {
      sum += std::exp(-s_ * std::log(static_cast<double>(i)));
    }
    harmonic_ = sum;
  }
  return std::exp(-s_ * std::log(static_cast<double>(k + 1))) / harmonic_;
}

}  // namespace analognf::traffic
