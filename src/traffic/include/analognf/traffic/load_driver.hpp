// LoadDriver: the closed-loop ingress harness — N producer threads
// pushing TrafficSource batches into per-port SPSC rings, N SwitchGroup
// port workers draining them run-to-completion, and exact offered vs
// achieved vs dropped accounting on top.
//
// Accounting is conservation-exact, not sampled: every packet a
// producer synthesizes is counted offered; it is then either achieved
// (its batch was popped and fully injected — counted by the worker's
// ring hook) or dropped (the ring was full in kDropBatch mode — counted
// by the producer). After the drain protocol (join producers, wait for
// ring empty, DetachRing) offered == achieved + dropped holds per port
// and in aggregate, and the switch's own stats() partition of
// `injected` nests inside `achieved`.
//
// Determinism: with Overflow::kBlock nothing is ever dropped, so the
// per-port packet stream, batch boundaries and injection clocks are a
// pure function of the workload config — a live run recorded to traces
// and a replay of those traces produce bit-identical SwitchStats and
// energy ledgers (kDropBatch drops depend on wall-clock timing, so only
// the conservation invariant holds there).
//
// Telemetry: each port's registry gains `ingress.offered_packets`,
// `ingress.achieved_packets`, `ingress.dropped_packets` (written once
// post-run from the driver thread, so the sharded cells stay exact) and
// an `ingress.batch_ns` histogram of enqueue-to-retire batch sojourns
// observed by the worker. p50/p99 sojourns are also tracked with
// streaming P2 quantiles and reported per port.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analognf/arch/port_runtime.hpp"
#include "analognf/traffic/source.hpp"

namespace analognf::traffic {

struct LoadReport;

struct LoadDriverConfig {
  std::size_t ports = 4;
  arch::SwitchConfig switch_config{};
  // Per-port workload template. Each port runs an independent source:
  // port p's seed is derived from workload.seed and p, so ports draw
  // different arrivals/flows from the same population.
  WorkloadConfig workload{};
  std::uint64_t packets_per_port = 100'000;  // offered load per port
  std::size_t batch_size = 32;               // packets per ring batch
  std::size_t ring_capacity = 256;           // batches per port ring
  enum class Overflow : std::uint8_t {
    kDropBatch,  // ring full -> count the batch dropped, keep going
    kBlock,      // ring full -> producer spins (lossless, deterministic)
  };
  Overflow overflow = Overflow::kDropBatch;
  // Installs a permit-all firewall rule plus one /32 route per
  // population destination host, round-robined over the switch's egress
  // ports, then commits — a closed system out of the box.
  bool install_default_tables = true;
  // Called after the drain completes and the report is assembled, while
  // the (now idle) group is still alive — the place to snapshot
  // telemetry, dump post-mortems, or write pcaps of deliveries.
  std::function<void(arch::SwitchGroup&, const LoadReport&)> inspect;

  void Validate() const;  // throws std::invalid_argument
};

// One port's ledger for the run.
struct PortLoadStats {
  std::uint64_t offered_packets = 0;
  std::uint64_t achieved_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t offered_batches = 0;
  std::uint64_t achieved_batches = 0;
  std::uint64_t dropped_batches = 0;
  double model_time_s = 0.0;  // last arrival timestamp the port reached
  double p50_batch_ns = 0.0;  // enqueue-to-retire sojourn quantiles
  double p99_batch_ns = 0.0;
  arch::SwitchStats stats{};  // the port switch's own verdict partition
  double energy_j = 0.0;      // the port's canonical ledger total
};

struct LoadReport {
  std::vector<PortLoadStats> ports;
  // Aggregates over every port (offered == achieved + dropped, exact).
  std::uint64_t offered_packets = 0;
  std::uint64_t achieved_packets = 0;
  std::uint64_t dropped_packets = 0;
  double wall_s = 0.0;          // produce-to-drain wall time
  double achieved_mpps = 0.0;   // achieved_packets / wall_s / 1e6
  arch::SwitchStats stats{};    // aggregate verdict partition
  double energy_j = 0.0;        // aggregate switch energy
};

class LoadDriver {
 public:
  explicit LoadDriver(LoadDriverConfig config);

  // Runs the live workload. When `record` is non-null it is resized to
  // one Trace per port and each port's emitted stream is captured —
  // feed the result to RunReplay for a bit-identical re-run (use
  // Overflow::kBlock for that; see the determinism note above).
  LoadReport Run(std::vector<Trace>* record = nullptr);

  // Replays previously recorded traces, one per port (size must equal
  // ports). packets_per_port is ignored — each trace plays to its end.
  LoadReport RunReplay(const std::vector<Trace>& traces);

 private:
  LoadReport Drive(std::vector<TrafficSource> sources,
                   std::uint64_t packet_limit);

  LoadDriverConfig config_;
};

}  // namespace analognf::traffic
