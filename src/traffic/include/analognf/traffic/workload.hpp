// Internet-scale workload models: who sends (a Zipf-popular population
// of millions of flows with stable 5-tuples/DSCP/ECN), when they send
// (Poisson / MMPP / on-off arrival processes), and what the packets
// look like (size models + fast byte-accurate synthesis).
//
// The paper evaluates against "Poisson distributed network flows"
// (Sec. 6); this layer keeps that process but makes the *population*
// realistic: flow popularity is heavy-tailed, per-flow headers are
// stable (so the firewall, LPM, classifier and flow tracker see
// consistent flows with realistic skew), and everything is derived
// deterministically from a seed — no per-flow storage, so a million
// simulated users costs nothing but the sampler.
#pragma once

#include <cstdint>
#include <vector>

#include "analognf/common/rng.hpp"
#include "analognf/net/packet.hpp"
#include "analognf/traffic/zipf.hpp"

namespace analognf::traffic {

// The stable header identity of one simulated flow.
struct FlowTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;  // net::kIpProtoUdp or kIpProtoTcp
  std::uint8_t dscp = 0;      // 6-bit DSCP
  bool ect = false;           // ECN-capable transport (ECT(0))
};

// Deterministic flow-index -> FlowTuple mapping. Every field is derived
// from SplitMix64(seed, flow), so the population needs zero storage and
// any subset of flows can be regenerated anywhere (trace replay relies
// on this: a trace stores flow indices plus this config, not tuples).
struct PopulationConfig {
  std::uint64_t flows = 1u << 20;  // simulated concurrent flows
  std::uint64_t seed = 0x5eedf10;
  // Destination fan-in: dst_ip = dst_base + (hash % dst_hosts). Kept
  // small relative to `flows` so routes stay installable; defaults give
  // 10.0.0.0/24 servers behind a handful of routes.
  std::uint32_t dst_base = 0x0a000000u;  // 10.0.0.0
  std::uint32_t dst_hosts = 256;
  double udp_fraction = 0.8;  // remaining flows are TCP
  double ect_fraction = 0.5;  // ECN-capable transports
  // Per-flow DSCP class selector (priority p in 0..7 maps to DSCP p<<3);
  // chance of a high-priority flow (p in 4..7) vs best effort (0..3).
  double high_priority_fraction = 0.25;

  void Validate() const;  // throws std::invalid_argument
};

class FlowPopulation {
 public:
  explicit FlowPopulation(PopulationConfig config);

  const PopulationConfig& config() const { return config_; }
  std::uint64_t flows() const { return config_.flows; }

  // The stable tuple of flow `flow` (any index < flows()).
  FlowTuple Tuple(std::uint64_t flow) const;

 private:
  PopulationConfig config_;
};

// ------------------------------------------------------------- arrivals

// When packets arrive, in model time. All three processes produce
// strictly ordered, deterministic arrival sequences from a seed.
struct ArrivalConfig {
  enum class Process : std::uint8_t {
    kPoisson,  // memoryless arrivals at rate_pps
    kMmpp,     // two-state Markov-modulated Poisson (calm / burst)
    kOnOff,    // on-off source: Poisson bursts separated by silence
  };
  Process process = Process::kPoisson;
  double rate_pps = 1.0e6;
  // kMmpp: the burst state multiplies the rate; kOnOff: the on state
  // sends at rate_pps * burst_factor, the off state sends nothing.
  double burst_factor = 8.0;
  double mean_calm_dwell_s = 0.5;   // kMmpp calm / kOnOff off dwell
  double mean_burst_dwell_s = 0.05; // kMmpp burst / kOnOff on dwell

  void Validate() const;  // throws std::invalid_argument
};

// Stateful arrival clock: Next() returns the next strictly increasing
// arrival time in seconds.
class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalConfig config, std::uint64_t seed);

  double Next();
  bool in_burst() const { return in_burst_; }

 private:
  ArrivalConfig config_;
  analognf::RandomStream rng_;
  double now_s_ = 0.0;
  double state_ends_s_ = 0.0;
  bool in_burst_ = false;
};

// ------------------------------------------------------------- workload

// The full per-port workload: population x popularity x arrivals x sizes.
struct WorkloadConfig {
  PopulationConfig population{};
  double zipf_s = 1.0;  // 0 = uniform popularity
  ArrivalConfig arrivals{};
  enum class Sizes : std::uint8_t { kImix, kFixed };
  Sizes sizes = Sizes::kImix;
  std::uint32_t fixed_size_bytes = 256;  // kFixed only (total frame bytes)
  std::uint64_t seed = 0x10ad;

  void Validate() const;  // throws std::invalid_argument
};

// ------------------------------------------------------------ synthesis

// Minimum synthesizable frame: Ethernet + IPv4 + UDP, no payload.
inline constexpr std::uint32_t kMinFrameBytes =
    net::EthernetHeader::kSize + net::Ipv4Header::kSize +
    net::UdpHeader::kSize;

// Writes a byte-accurate Ethernet/IPv4/{UDP,TCP} frame of exactly
// `frame_bytes` (clamped up to the tuple's minimum) for `tuple` into
// `out` (resized; storage reused across calls). The bytes parse cleanly
// through net::Parser with checksum verification and reproduce the
// tuple's 5-tuple, DSCP and ECN bit-exactly — the property the
// differential test pins, and what makes trace replay byte-identical.
void SynthesizeFrame(const FlowTuple& tuple, std::uint32_t frame_bytes,
                     std::vector<std::uint8_t>& out);

// Convenience wrapper returning an owning net::Packet.
net::Packet SynthesizePacket(const FlowTuple& tuple,
                             std::uint32_t frame_bytes);

}  // namespace analognf::traffic
