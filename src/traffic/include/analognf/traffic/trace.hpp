// Compact binary traffic traces: record a workload once, replay it
// bit-identically anywhere.
//
// A trace does NOT store packet bytes. Because every FlowTuple is a pure
// function of (PopulationConfig, flow index) and every frame is a pure
// function of (tuple, frame_bytes), a record is just
// {arrival time, flow index, frame bytes} — 20 bytes per packet — and
// the header carries the PopulationConfig needed to regenerate the
// tuples. Arrival times round-trip as raw IEEE-754 bit patterns, so a
// recorded run and its replay hand the switch the *same doubles*, which
// is what makes replayed verdicts and energy ledgers bit-identical
// (LoadDriverTest.ReplayMatchesLiveRun pins this end to end).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "analognf/traffic/workload.hpp"

namespace analognf::traffic {

// One recorded packet.
struct TraceRecord {
  double arrival_s = 0.0;
  std::uint64_t flow = 0;        // index into the header's population
  std::uint32_t frame_bytes = 0; // full frame length on the wire
};

// A recorded stream: the population it was drawn from plus the packets.
struct Trace {
  PopulationConfig population{};
  std::vector<TraceRecord> records;
};

// Serializes `trace` in the little-endian "ANFT" v1 format. Throws
// std::runtime_error on stream failure.
void WriteTrace(std::ostream& out, const Trace& trace);

// Parses a trace written by WriteTrace. Throws std::runtime_error on
// bad magic, unsupported version, or truncation.
Trace ReadTrace(std::istream& in);

}  // namespace analognf::traffic
