// TrafficSource: one port's packet stream, batch at a time.
//
// Three modes behind one NextBatch() API:
//   * Live      — WorkloadConfig-driven synthesis: ArrivalProcess clocks
//                 the stream, a ZipfSampler picks which flow of the
//                 FlowPopulation sends (heavy-tailed popularity), a size
//                 model picks the frame length, and SynthesizeFrame
//                 emits the byte-accurate packet. Never exhausts.
//   * Replay    — re-emits a recorded Trace. Because synthesis is a
//                 pure function of (population, flow, frame_bytes), the
//                 replayed packets are byte-identical to the live run
//                 that recorded the trace.
//   * FromPcap  — replays a parsed capture (net::ReadPcap) verbatim,
//                 timestamps and all.
//
// RecordTo() tees every emitted packet into a Trace (live/replay modes;
// pcap frames have no flow index, so recording there throws). A source
// is single-threaded: exactly the producer thread that owns it calls
// NextBatch().
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "analognf/net/generator.hpp"
#include "analognf/net/pcap.hpp"
#include "analognf/traffic/trace.hpp"
#include "analognf/traffic/workload.hpp"
#include "analognf/traffic/zipf.hpp"

namespace analognf::traffic {

class TrafficSource {
 public:
  // Live synthesis from `config` (validated; throws on bad config).
  static TrafficSource Live(WorkloadConfig config);
  // Replays `trace` once, then reports exhaustion.
  static TrafficSource Replay(Trace trace);
  // Replays a parsed pcap capture once, frames verbatim.
  static TrafficSource FromPcap(std::vector<net::PcapRecord> records);

  TrafficSource(TrafficSource&&) = default;
  TrafficSource& operator=(TrafficSource&&) = default;

  // Tees emitted packets into `trace` (population is filled in; records
  // are appended). Pass nullptr to stop recording. Throws
  // std::logic_error in pcap mode.
  void RecordTo(Trace* trace);

  // Appends up to `max_packets` packets to `packets` and sets `now_s`
  // to the arrival time of the last one (the batch's injection clock).
  // Returns the number appended; 0 means the source is exhausted
  // (replay/pcap past the end — live sources never return 0 for
  // max_packets > 0).
  std::size_t NextBatch(std::size_t max_packets,
                        std::vector<net::Packet>& packets, double& now_s);

  std::uint64_t emitted() const { return emitted_; }

 private:
  enum class Mode : std::uint8_t { kLive, kReplay, kPcap };

  explicit TrafficSource(Mode mode) : mode_(mode) {}

  Mode mode_;
  std::uint64_t emitted_ = 0;
  Trace* record_ = nullptr;
  std::vector<std::uint8_t> frame_;  // synthesis scratch, reused

  // kLive
  WorkloadConfig config_{};
  std::unique_ptr<FlowPopulation> population_;
  std::unique_ptr<ZipfSampler> zipf_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  std::unique_ptr<analognf::RandomStream> rng_;

  // kReplay
  Trace trace_{};
  std::size_t next_record_ = 0;

  // kPcap
  std::vector<net::PcapRecord> pcap_;
  std::size_t next_pcap_ = 0;
};

}  // namespace analognf::traffic
