// Zipf(s) rank sampling over populations of millions of flows.
//
// Internet flow popularity is heavy-tailed: a handful of elephant flows
// carry most packets while millions of mice appear once. The workload
// layer needs to draw ranks from Zipf(s) over n in the millions without
// materialising any per-rank state, so this uses rejection-inversion
// sampling (Hörmann & Derflinger 1996, the algorithm behind Apache
// Commons' RejectionInversionZipfSampler): O(1) setup, O(1) expected
// draws per sample, exact Zipf probabilities for any exponent s > 0.
// s == 0 degenerates to the uniform distribution.
#pragma once

#include <cstdint>

#include "analognf/common/rng.hpp"

namespace analognf::traffic {

class ZipfSampler {
 public:
  // P(rank = k) proportional to 1 / (k+1)^s for k in [0, n). Throws
  // std::invalid_argument for n == 0 or s < 0.
  ZipfSampler(std::uint64_t n, double s);

  // Draws a 0-based rank; rank 0 is the most popular.
  std::uint64_t Sample(analognf::RandomStream& rng) const;

  // Exact probability of rank k (for distribution tests).
  double Probability(std::uint64_t k) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  double H(double x) const;

  std::uint64_t n_;
  double s_;
  double h_integral_x1_ = 0.0;
  double h_integral_n_ = 0.0;
  double threshold_ = 0.0;  // rejection acceptance cut (see Sample)
  // Generalized harmonic number; computed lazily by Probability() (test
  // accessor, not thread-safe with concurrent Probability calls).
  mutable double harmonic_ = 0.0;
};

}  // namespace analognf::traffic
