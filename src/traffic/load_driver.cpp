#include "analognf/traffic/load_driver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analognf/common/quantile.hpp"

namespace analognf::traffic {
namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Single-writer accounting structs. The producer thread owns Producer-
// Side, the port worker owns WorkerSide (via the ring hook); the driver
// thread reads both only after joining / detaching, where the thread
// join and the DetachRing condvar handshake give the happens-before.
struct ProducerSide {
  std::uint64_t offered_packets = 0;
  std::uint64_t offered_batches = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_batches = 0;
  double model_time_s = 0.0;
};

struct WorkerSide {
  std::uint64_t achieved_packets = 0;
  std::uint64_t achieved_batches = 0;
  analognf::P2Quantile p50{0.5};
  analognf::P2Quantile p99{0.99};
  telemetry::HistogramHandle batch_ns;
};

}  // namespace

void LoadDriverConfig::Validate() const {
  if (ports == 0) {
    throw std::invalid_argument("LoadDriverConfig: ports == 0");
  }
  if (batch_size == 0) {
    throw std::invalid_argument("LoadDriverConfig: batch_size == 0");
  }
  if (ring_capacity == 0) {
    throw std::invalid_argument("LoadDriverConfig: ring_capacity == 0");
  }
  workload.Validate();
  switch_config.Validate();
}

LoadDriver::LoadDriver(LoadDriverConfig config) : config_(std::move(config)) {
  config_.Validate();
}

LoadReport LoadDriver::Run(std::vector<Trace>* record) {
  if (record != nullptr) {
    record->assign(config_.ports, Trace{});
  }
  std::vector<TrafficSource> sources;
  sources.reserve(config_.ports);
  for (std::size_t p = 0; p < config_.ports; ++p) {
    WorkloadConfig w = config_.workload;
    // Per-port sampler/arrival sub-streams over the SAME population:
    // ports see different packets from one shared flow universe.
    analognf::SplitMix64 sm(w.seed ^ (0x9047ULL + p));
    w.seed = sm.Next();
    sources.push_back(TrafficSource::Live(w));
    if (record != nullptr) sources.back().RecordTo(&(*record)[p]);
  }
  return Drive(std::move(sources), config_.packets_per_port);
}

LoadReport LoadDriver::RunReplay(const std::vector<Trace>& traces) {
  if (traces.size() != config_.ports) {
    throw std::invalid_argument("LoadDriver::RunReplay: trace count != ports");
  }
  std::vector<TrafficSource> sources;
  sources.reserve(config_.ports);
  for (const Trace& trace : traces) {
    sources.push_back(TrafficSource::Replay(trace));
  }
  // Traces play to their end regardless of packets_per_port.
  return Drive(std::move(sources),
               std::numeric_limits<std::uint64_t>::max());
}

LoadReport LoadDriver::Drive(std::vector<TrafficSource> sources,
                             std::uint64_t packet_limit) {
  const std::size_t ports = config_.ports;
  arch::SwitchGroup group(ports, config_.switch_config);
  if (config_.install_default_tables) {
    group.AddFirewallRule(arch::FirewallPattern{}, true, 0);
    const PopulationConfig& pop = config_.workload.population;
    for (std::uint32_t h = 0; h < pop.dst_hosts; ++h) {
      group.AddRoute(pop.dst_base + h, 32,
                     h % config_.switch_config.port_count);
    }
    group.Commit();
  }

  std::vector<std::unique_ptr<arch::PortRuntime::IngressRing>> rings;
  std::vector<std::unique_ptr<WorkerSide>> workers;
  std::vector<ProducerSide> producers(ports);
  rings.reserve(ports);
  workers.reserve(ports);
  for (std::size_t p = 0; p < ports; ++p) {
    rings.push_back(std::make_unique<arch::PortRuntime::IngressRing>(
        config_.ring_capacity));
    workers.push_back(std::make_unique<WorkerSide>());
    workers[p]->batch_ns = group.device(p).telemetry().metrics().GetHistogram(
        "ingress.batch_ns", telemetry::HistogramSpec{256.0, 2.0, 24});
    WorkerSide* w = workers[p].get();
    group.runtime(p).AttachRing(
        rings[p].get(), [w](const arch::PortRuntime::RingBatchInfo& info) {
          w->achieved_packets += info.packets;
          ++w->achieved_batches;
          const auto sojourn =
              static_cast<double>(info.done_ns - info.enqueue_ns);
          w->p50.Add(sojourn);
          w->p99.Add(sojourn);
          w->batch_ns.Observe(sojourn);
        });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(ports);
  for (std::size_t p = 0; p < ports; ++p) {
    threads.emplace_back([this, p, packet_limit, &sources, &rings,
                          &producers] {
      TrafficSource& src = sources[p];
      arch::PortRuntime::IngressRing& ring = *rings[p];
      ProducerSide& acct = producers[p];
      std::uint64_t remaining = packet_limit;
      std::vector<net::Packet> scratch;
      while (remaining > 0) {
        scratch.clear();
        double now_s = 0.0;
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(config_.batch_size, remaining));
        const std::size_t n = src.NextBatch(want, scratch, now_s);
        if (n == 0) break;  // replay source exhausted
        remaining -= n;
        acct.offered_packets += n;
        ++acct.offered_batches;
        acct.model_time_s = now_s;
        arch::PortRuntime::Batch batch;
        batch.packets = std::move(scratch);
        batch.now_s = now_s;
        batch.enqueue_ns = SteadyNowNs();
        if (config_.overflow == LoadDriverConfig::Overflow::kBlock) {
          // TryPush leaves the batch intact on failure, so spinning
          // retries the same batch — lossless backpressure.
          while (!ring.TryPush(batch)) std::this_thread::yield();
        } else if (!ring.TryPush(batch)) {
          acct.dropped_packets += n;
          ++acct.dropped_batches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Drain protocol: producers are done, so waiting for ring-empty then
  // detaching guarantees every non-dropped batch was popped AND fully
  // executed before we read the worker-side accounting.
  for (std::size_t p = 0; p < ports; ++p) {
    while (!rings[p]->Empty()) std::this_thread::yield();
    group.runtime(p).DetachRing();
  }
  group.WaitIdle();
  const auto wall_stop = std::chrono::steady_clock::now();

  LoadReport report;
  report.wall_s = std::chrono::duration<double>(wall_stop - wall_start).count();
  report.ports.resize(ports);
  for (std::size_t p = 0; p < ports; ++p) {
    PortLoadStats& ps = report.ports[p];
    const ProducerSide& prod = producers[p];
    const WorkerSide& work = *workers[p];
    ps.offered_packets = prod.offered_packets;
    ps.offered_batches = prod.offered_batches;
    ps.dropped_packets = prod.dropped_packets;
    ps.dropped_batches = prod.dropped_batches;
    ps.model_time_s = prod.model_time_s;
    ps.achieved_packets = work.achieved_packets;
    ps.achieved_batches = work.achieved_batches;
    ps.p50_batch_ns = work.p50.count() > 0 ? work.p50.Value() : 0.0;
    ps.p99_batch_ns = work.p99.count() > 0 ? work.p99.Value() : 0.0;
    ps.stats = group.device(p).stats();
    ps.energy_j = group.device(p).ledger().TotalJ();

    // Authoritative load counts land in the port's registry once, from
    // this (driver) thread, after the run — sharded cells stay exact.
    telemetry::MetricsRegistry& metrics = group.device(p).telemetry().metrics();
    metrics.GetCounter("ingress.offered_packets").Inc(ps.offered_packets);
    metrics.GetCounter("ingress.achieved_packets").Inc(ps.achieved_packets);
    metrics.GetCounter("ingress.dropped_packets").Inc(ps.dropped_packets);

    report.offered_packets += ps.offered_packets;
    report.achieved_packets += ps.achieved_packets;
    report.dropped_packets += ps.dropped_packets;
    report.energy_j += ps.energy_j;
  }
  report.stats = group.AggregateStats();
  report.achieved_mpps =
      report.wall_s > 0.0
          ? static_cast<double>(report.achieved_packets) / report.wall_s / 1e6
          : 0.0;
  if (config_.inspect) config_.inspect(group, report);
  return report;
}

}  // namespace analognf::traffic
