#include "analognf/traffic/source.hpp"

#include <utility>

namespace analognf::traffic {

TrafficSource TrafficSource::Live(WorkloadConfig config) {
  config.Validate();
  TrafficSource src(Mode::kLive);
  src.config_ = config;
  src.population_ = std::make_unique<FlowPopulation>(config.population);
  src.zipf_ = std::make_unique<ZipfSampler>(config.population.flows,
                                            config.zipf_s);
  // Distinct sub-streams for the clock and the sampler so changing one
  // model never perturbs the other's draws.
  src.arrivals_ = std::make_unique<ArrivalProcess>(
      config.arrivals, config.seed ^ 0xa441u);
  src.rng_ = std::make_unique<analognf::RandomStream>(config.seed);
  return src;
}

TrafficSource TrafficSource::Replay(Trace trace) {
  trace.population.Validate();
  TrafficSource src(Mode::kReplay);
  src.trace_ = std::move(trace);
  src.population_ = std::make_unique<FlowPopulation>(src.trace_.population);
  return src;
}

TrafficSource TrafficSource::FromPcap(std::vector<net::PcapRecord> records) {
  TrafficSource src(Mode::kPcap);
  src.pcap_ = std::move(records);
  return src;
}

void TrafficSource::RecordTo(Trace* trace) {
  if (mode_ == Mode::kPcap && trace != nullptr) {
    throw std::logic_error(
        "TrafficSource::RecordTo: pcap frames have no flow index");
  }
  record_ = trace;
  if (record_ != nullptr) {
    record_->population =
        mode_ == Mode::kLive ? config_.population : trace_.population;
  }
}

std::size_t TrafficSource::NextBatch(std::size_t max_packets,
                                     std::vector<net::Packet>& packets,
                                     double& now_s) {
  std::size_t n = 0;
  for (; n < max_packets; ++n) {
    double arrival = 0.0;
    std::uint64_t flow = 0;
    std::uint32_t frame_bytes = 0;
    if (mode_ == Mode::kLive) {
      arrival = arrivals_->Next();
      flow = zipf_->Sample(*rng_);
      frame_bytes = config_.sizes == WorkloadConfig::Sizes::kFixed
                        ? config_.fixed_size_bytes
                        : net::ImixSize{}.Sample(*rng_);
    } else if (mode_ == Mode::kReplay) {
      if (next_record_ >= trace_.records.size()) break;
      const TraceRecord& r = trace_.records[next_record_++];
      arrival = r.arrival_s;
      flow = r.flow;
      frame_bytes = r.frame_bytes;
    } else {
      if (next_pcap_ >= pcap_.size()) break;
      const net::PcapRecord& r = pcap_[next_pcap_++];
      packets.push_back(r.packet);
      now_s = r.timestamp_s;
      ++emitted_;
      continue;
    }
    SynthesizeFrame(population_->Tuple(flow), frame_bytes, frame_);
    packets.emplace_back(frame_);
    now_s = arrival;
    ++emitted_;
    if (record_ != nullptr) {
      record_->records.push_back(TraceRecord{arrival, flow, frame_bytes});
    }
  }
  return n;
}

}  // namespace analognf::traffic
