#include "analognf/analog/sample_hold.hpp"

#include <cmath>
#include <stdexcept>

namespace analognf::analog {

SampleAndHold::SampleAndHold(double droop_v_per_s)
    : droop_v_per_s_(droop_v_per_s) {
  if (droop_v_per_s < 0.0) {
    throw std::invalid_argument("SampleAndHold: negative droop rate");
  }
}

void SampleAndHold::CheckTime(double t_s) {
  if (primed_ && t_s < last_t_s_) {
    throw std::invalid_argument("SampleAndHold: time went backwards");
  }
  primed_ = true;
}

double SampleAndHold::Track(double t_s, double input_v) {
  CheckTime(t_s);
  last_t_s_ = t_s;
  holding_ = false;
  output_v_ = input_v;
  return output_v_;
}

double SampleAndHold::Hold(double t_s) {
  CheckTime(t_s);
  const double dt = t_s - last_t_s_;
  last_t_s_ = t_s;
  if (!holding_) {
    holding_ = true;  // hold starts from the last tracked value
  }
  if (droop_v_per_s_ > 0.0 && dt > 0.0) {
    const double droop = droop_v_per_s_ * dt;
    if (std::fabs(output_v_) <= droop) {
      output_v_ = 0.0;
    } else {
      output_v_ -= output_v_ > 0.0 ? droop : -droop;
    }
  }
  return output_v_;
}

}  // namespace analognf::analog
