#include "analognf/analog/crossbar.hpp"

#include <stdexcept>

namespace analognf::analog {

Crossbar::Crossbar(std::size_t rows, std::size_t cols,
                   const device::MemristorParams& params,
                   const device::DeviceVariation* variation,
                   std::uint64_t seed)
    : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Crossbar: zero dimension");
  }
  params.Validate();
  cells_.reserve(rows * cols);
  analognf::RandomStream rng(seed);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    device::MemristorParams cell_params =
        variation != nullptr ? variation->Apply(params, rng) : params;
    cells_.emplace_back(cell_params, /*initial_state=*/0.0);
  }
}

std::size_t Crossbar::Index(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_) {
    throw std::out_of_range("Crossbar: cell index out of range");
  }
  return row * cols_ + col;
}

device::Memristor& Crossbar::At(std::size_t row, std::size_t col) {
  return cells_[Index(row, col)];
}

const device::Memristor& Crossbar::At(std::size_t row,
                                      std::size_t col) const {
  return cells_[Index(row, col)];
}

void Crossbar::ProgramConductances(const std::vector<double>& siemens) {
  if (siemens.size() != cells_.size()) {
    throw std::invalid_argument(
        "Crossbar::ProgramConductances: size mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!(siemens[i] > 0.0)) {
      throw std::invalid_argument(
          "Crossbar::ProgramConductances: non-positive conductance");
    }
    cells_[i].SetResistance(1.0 / siemens[i]);
  }
}

std::vector<double> Crossbar::Multiply(
    const std::vector<double>& row_voltages) {
  if (row_voltages.size() != rows_) {
    throw std::invalid_argument("Crossbar::Multiply: voltage size mismatch");
  }
  std::vector<double> currents(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v = row_voltages[r];
    if (v == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) {
      const device::Memristor& cell = cells_[r * cols_ + c];
      const double g = cell.ConductanceS();
      currents[c] += v * g;
      consumed_energy_j_ += v * v * g * cell.params().read_time_s;
    }
  }
  return currents;
}

}  // namespace analognf::analog
