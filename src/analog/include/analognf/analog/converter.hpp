// Digital <-> analog converters at the boundary between the digital
// pipeline and the pCAM array (Fig. 5 / Fig. 7: "analog input ... mapped
// to hardware voltages (DACs)").
#pragma once

#include <cmath>
#include <cstdint>

#include "analognf/analog/signal.hpp"
#include "analognf/common/rng.hpp"

namespace analognf::analog {

// Behavioural DAC: converts a feature value to a voltage through a
// LinearMap, quantised to `bits` of resolution, with optional
// integral-nonlinearity (INL) noise in LSBs.
class Dac {
 public:
  // bits in [1, 24]; inl_sigma_lsb >= 0 adds Gaussian error scaled by
  // one LSB to each conversion.
  Dac(LinearMap map, unsigned bits, double inl_sigma_lsb = 0.0,
      std::uint64_t noise_seed = 0x0dac5eed);

  // Feature -> quantised output voltage. Inline and cached: the AQM data
  // path converts eight features per decision, and within a batch most of
  // them (the held derivative-chain outputs) repeat the previous value.
  // When INL noise is off the conversion is a pure function, so a
  // single-entry cache returns the exact same double.
  double Convert(double feature) {
    if (inl_sigma_lsb_ == 0.0) {
      if (has_last_ && feature == last_feature_) return last_out_;
      const double out = map_.range().Clamp(Quantize(feature));
      has_last_ = true;
      last_feature_ = feature;
      last_out_ = out;
      return out;
    }
    double out = Quantize(feature);
    out += rng_.NextNormal(0.0, inl_sigma_lsb_ * lsb_);
    return map_.range().Clamp(out);
  }

  double LsbVolts() const { return lsb_; }
  unsigned bits() const { return bits_; }
  const LinearMap& map() const { return map_; }

 private:
  // Noise-free quantisation shared by both Convert paths (clamp happens
  // in the caller, after optional INL noise, exactly as before). `lsb_`
  // is the same span/(2^bits - 1) division LsbVolts() used to do per
  // call, computed once at construction — identical double, fewer
  // divides.
  double Quantize(double feature) const {
    const double ideal_v = map_.ToVoltage(feature);
    const double code = std::round((ideal_v - map_.range().lo_v) / lsb_);
    return map_.range().lo_v + code * lsb_;
  }

  LinearMap map_;
  unsigned bits_;
  double inl_sigma_lsb_;
  double lsb_ = 0.0;
  bool has_last_ = false;
  double last_feature_ = 0.0;
  double last_out_ = 0.0;
  analognf::RandomStream rng_;
};

// Behavioural ADC: inverse direction, quantising a voltage into a code
// and reporting the reconstructed feature value.
class Adc {
 public:
  Adc(LinearMap map, unsigned bits, double inl_sigma_lsb = 0.0,
      std::uint64_t noise_seed = 0x0adc5eed);

  // Voltage -> code in [0, 2^bits - 1].
  std::uint32_t Sample(double voltage_v);
  // Voltage -> reconstructed feature value.
  double Convert(double voltage_v);

  double LsbVolts() const;
  unsigned bits() const { return bits_; }
  const LinearMap& map() const { return map_; }

 private:
  LinearMap map_;
  unsigned bits_;
  double inl_sigma_lsb_;
  analognf::RandomStream rng_;
};

}  // namespace analognf::analog
