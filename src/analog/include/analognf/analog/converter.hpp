// Digital <-> analog converters at the boundary between the digital
// pipeline and the pCAM array (Fig. 5 / Fig. 7: "analog input ... mapped
// to hardware voltages (DACs)").
#pragma once

#include <cstdint>

#include "analognf/analog/signal.hpp"
#include "analognf/common/rng.hpp"

namespace analognf::analog {

// Behavioural DAC: converts a feature value to a voltage through a
// LinearMap, quantised to `bits` of resolution, with optional
// integral-nonlinearity (INL) noise in LSBs.
class Dac {
 public:
  // bits in [1, 24]; inl_sigma_lsb >= 0 adds Gaussian error scaled by
  // one LSB to each conversion.
  Dac(LinearMap map, unsigned bits, double inl_sigma_lsb = 0.0,
      std::uint64_t noise_seed = 0x0dac5eed);

  // Feature -> quantised output voltage.
  double Convert(double feature);

  double LsbVolts() const;
  unsigned bits() const { return bits_; }
  const LinearMap& map() const { return map_; }

 private:
  LinearMap map_;
  unsigned bits_;
  double inl_sigma_lsb_;
  analognf::RandomStream rng_;
};

// Behavioural ADC: inverse direction, quantising a voltage into a code
// and reporting the reconstructed feature value.
class Adc {
 public:
  Adc(LinearMap map, unsigned bits, double inl_sigma_lsb = 0.0,
      std::uint64_t noise_seed = 0x0adc5eed);

  // Voltage -> code in [0, 2^bits - 1].
  std::uint32_t Sample(double voltage_v);
  // Voltage -> reconstructed feature value.
  double Convert(double voltage_v);

  double LsbVolts() const;
  unsigned bits() const { return bits_; }
  const LinearMap& map() const { return map_; }

 private:
  LinearMap map_;
  unsigned bits_;
  double inl_sigma_lsb_;
  analognf::RandomStream rng_;
};

}  // namespace analognf::analog
