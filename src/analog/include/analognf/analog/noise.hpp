// Analog signal-integrity model.
//
// RQ2 of the paper: "the match output can lose its precision depending
// upon the line losses, signal strength and interference from the
// neighboring components." This module models those three effects on a
// voltage travelling between architecture blocks, so that the precision
// requirements of different network functions (IP lookup vs. AQM) can be
// analysed quantitatively (bench_ablation_noise).
#pragma once

#include <cstddef>

#include "analognf/common/rng.hpp"

namespace analognf::analog {

// Channel parameters. All default to the ideal channel.
struct ChannelParams {
  // Multiplicative line loss: the fraction of amplitude *retained*
  // (1.0 = lossless, 0.98 = 2% attenuation).
  double line_gain = 1.0;
  // Additive white Gaussian noise, std-dev in volts (thermal + sense-amp
  // input-referred noise).
  double awgn_sigma_v = 0.0;
  // Peak amplitude of deterministic crosstalk from neighbouring lines,
  // in volts. Modelled as a phase-advancing sinusoid so repeated samples
  // decorrelate the way periodic aggressor activity does.
  double interference_peak_v = 0.0;
  // Crosstalk phase advance per sample, radians.
  double interference_step_rad = 2.399963;  // golden-angle: no short cycles

  void Validate() const;  // throws std::invalid_argument

  // True when Transmit() is a pure per-sample gain (no RNG draws, no
  // phase state): the batched pCAM search engine uses this to skip
  // channel bookkeeping entirely on the hot path.
  bool IsStateless() const {
    return awgn_sigma_v == 0.0 && interference_peak_v == 0.0;
  }

  // Convenience presets used across tests and benches.
  static ChannelParams Ideal() { return {}; }
  static ChannelParams Noisy(double sigma_v) {
    ChannelParams p;
    p.awgn_sigma_v = sigma_v;
    return p;
  }
};

// A stateful noisy channel: Transmit() applies line loss, crosstalk and
// AWGN to one voltage sample.
class AnalogChannel {
 public:
  AnalogChannel(ChannelParams params, analognf::RandomStream rng);

  // An ideal (identity) channel with an unused RNG.
  static AnalogChannel MakeIdeal();

  double Transmit(double voltage_v);

  // Transmits `count` samples in one call: out[i] is exactly what
  // Transmit(in[i]) would have returned, in order, but the loss/crosstalk/
  // AWGN sampling runs in one tight loop. Batched pCAM searches use this
  // to amortize channel sampling across a whole probe batch per cell.
  // `in` and `out` may alias.
  void TransmitBatch(const double* in, double* out, std::size_t count);

  const ChannelParams& params() const { return params_; }

 private:
  ChannelParams params_;
  analognf::RandomStream rng_;
  double phase_rad_ = 0.0;
};

// Johnson-Nyquist thermal noise voltage std-dev for a resistance read
// over the given bandwidth: sqrt(4 k T R B). Exposed so device-level
// noise floors can be derived from the memristor state being read.
double ThermalNoiseSigmaV(double resistance_ohm, double bandwidth_hz,
                          double temperature_k);

}  // namespace analognf::analog
