// Analog derivative computation for cognitive feature extraction.
//
// The paper's analog AQM (Fig. 6) feeds the pCAM pipeline with the 1st,
// 2nd and 3rd-order derivatives of sojourn time and buffer size,
// "computed by the analog components" (citing memristor-based
// programmable analog ICs and PDE solvers). Behaviourally, an analog
// differentiator is a band-limited d/dt: we model it as a first-order
// low-pass smoother followed by a finite difference on the smoothed
// signal, which captures both the derivative action and the finite
// bandwidth that keeps real differentiators from amplifying noise
// without bound.
#pragma once

#include <array>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace analognf::analog {

// Single-stage band-limited differentiator. Feed time-stamped samples of
// x(t); Output() is the estimate of dx/dt.
class Differentiator {
 public:
  // `time_constant_s` is the RC constant of the input smoother
  // (> 0; smaller = wider bandwidth = noisier derivative).
  explicit Differentiator(double time_constant_s);

  // Processes a sample at time `t_s` (strictly increasing after the
  // first sample) and returns the current derivative estimate. The first
  // sample initialises the stage and yields 0.
  double Step(double t_s, double x);

  double Output() const { return output_; }
  void Reset();

 private:
  friend class DerivativeChain;

  // Hot-path Step for a stage already known to be primed with dt > 0 and
  // alpha = 1 - exp(-dt/tau) precomputed by the caller. Identical
  // arithmetic to Step(); DerivativeChain uses it to compute the exp once
  // per chain sample instead of once per stage.
  double StepWithAlpha(double t_s, double dt, double alpha, double x) {
    const double prev_smoothed = smoothed_;
    smoothed_ += alpha * (x - smoothed_);
    output_ = (smoothed_ - prev_smoothed) / dt;
    last_t_s_ = t_s;
    return output_;
  }

  double time_constant_s_;
  bool primed_ = false;
  double last_t_s_ = 0.0;
  double smoothed_ = 0.0;
  double output_ = 0.0;
};

// A cascade of differentiators producing x, x', x'', ... up to
// `max_order` (the paper uses max_order = 3). Order 0 is the (smoothed)
// input itself.
class DerivativeChain {
 public:
  static constexpr std::size_t kMaxSupportedOrder = 5;

  // max_order in [1, kMaxSupportedOrder].
  DerivativeChain(std::size_t max_order, double time_constant_s);

  // Feeds one sample; returns derivatives[0..max_order] where
  // derivatives[k] is the k-th order estimate.
  const std::vector<double>& Step(double t_s, double x);

  const std::vector<double>& outputs() const { return outputs_; }
  std::size_t max_order() const { return stages_.size(); }
  void Reset();

 private:
  std::vector<Differentiator> stages_;
  std::vector<double> outputs_;
  // Every stage shares the same timestamp history (they are fed in one
  // cascade), so dt — and therefore alpha — is chain-wide. Tracking it
  // here lets Step() take the coincident-sample hold path without touching
  // any stage, and compute/cache the exp() once for dt > 0.
  double time_constant_s_ = 0.0;
  bool primed_ = false;
  double last_t_s_ = 0.0;
  double cached_dt_ = -1.0;
  double cached_alpha_ = 0.0;
};

}  // namespace analognf::analog
