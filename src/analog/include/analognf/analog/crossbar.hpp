// Memristor crossbar array: analog vector-matrix multiplication.
//
// The crossbar is the canonical in-memory-computing substrate the paper's
// architecture builds on (Sec. 2, "built upon the principles of in-memory
// computing"): row voltages applied across a grid of programmed
// conductances produce per-column currents I_j = sum_i V_i * G_ij in one
// analog step, with computation colocalised with storage. The pCAM's
// stored-policy reads and the cognitive feature projections both reduce
// to this primitive, and Fig. 1's colocalisation energy argument is
// benchmarked against it.
#pragma once

#include <cstddef>
#include <vector>

#include "analognf/common/rng.hpp"
#include "analognf/device/memristor.hpp"

namespace analognf::analog {

// A rows x cols crossbar of memristors. Row index = input line,
// column index = output line.
class Crossbar {
 public:
  // All cells start from `params` at state 0 (HRS). If `variation` is
  // non-null, per-cell device-to-device variation is drawn from `seed`.
  Crossbar(std::size_t rows, std::size_t cols,
           const device::MemristorParams& params,
           const device::DeviceVariation* variation = nullptr,
           std::uint64_t seed = 0xc705ba5);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  device::Memristor& At(std::size_t row, std::size_t col);
  const device::Memristor& At(std::size_t row, std::size_t col) const;

  // Programs the whole array to the given conductance targets
  // (row-major, size rows*cols), clamped to each cell's range.
  void ProgramConductances(const std::vector<double>& siemens);

  // One analog evaluation: applies `row_voltages` (size rows) and
  // returns the cols column currents. Accumulates the dissipated energy
  // (sum over cells of V_i^2 * G_ij * read_time) into the internal meter.
  std::vector<double> Multiply(const std::vector<double>& row_voltages);

  // Energy dissipated by all Multiply() calls since the last ResetEnergy.
  double ConsumedEnergyJ() const { return consumed_energy_j_; }
  void ResetEnergy() { consumed_energy_j_ = 0.0; }

 private:
  std::size_t Index(std::size_t row, std::size_t col) const;

  std::size_t rows_;
  std::size_t cols_;
  std::vector<device::Memristor> cells_;
  double consumed_energy_j_ = 0.0;
};

}  // namespace analognf::analog
