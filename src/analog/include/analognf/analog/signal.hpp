// Analog signal basics: voltage ranges and linear feature-to-voltage maps.
//
// The architecture (Fig. 5) carries network features (sojourn times,
// buffer occupancies, derivatives) as voltages between the DAC front-end
// and the pCAM array. A VoltageRange names the span a signal lives in,
// and LinearMap is the affine feature<->voltage conversion the Fig. 7
// experiments use ("analog input ... mapped to hardware voltages (DACs)").
#pragma once

#include <algorithm>
#include <stdexcept>

namespace analognf::analog {

// A closed voltage interval [lo_v, hi_v], lo_v < hi_v.
struct VoltageRange {
  double lo_v;
  double hi_v;

  VoltageRange(double lo, double hi) : lo_v(lo), hi_v(hi) {
    if (!(hi > lo)) {
      throw std::invalid_argument("VoltageRange: require hi > lo");
    }
  }

  double span() const { return hi_v - lo_v; }
  bool Contains(double v) const { return v >= lo_v && v <= hi_v; }
  double Clamp(double v) const { return std::clamp(v, lo_v, hi_v); }
  // Position of v inside the range, in [0,1] after clamping.
  double Normalize(double v) const { return (Clamp(v) - lo_v) / span(); }
  // Inverse of Normalize for t in [0,1] (clamped).
  double Denormalize(double t) const {
    return lo_v + std::clamp(t, 0.0, 1.0) * span();
  }
};

// Affine map from a feature interval [feature_lo, feature_hi] onto a
// voltage range. Out-of-interval features clamp (a real DAC saturates).
class LinearMap {
 public:
  LinearMap(double feature_lo, double feature_hi, VoltageRange range)
      : feature_lo_(feature_lo), feature_hi_(feature_hi), range_(range) {
    if (!(feature_hi > feature_lo)) {
      throw std::invalid_argument(
          "LinearMap: require feature_hi > feature_lo");
    }
  }

  double ToVoltage(double feature) const {
    const double t = (std::clamp(feature, feature_lo_, feature_hi_) -
                      feature_lo_) /
                     (feature_hi_ - feature_lo_);
    return range_.Denormalize(t);
  }

  double ToFeature(double voltage) const {
    return feature_lo_ +
           range_.Normalize(voltage) * (feature_hi_ - feature_lo_);
  }

  const VoltageRange& range() const { return range_; }
  double feature_lo() const { return feature_lo_; }
  double feature_hi() const { return feature_hi_; }

 private:
  double feature_lo_;
  double feature_hi_;
  VoltageRange range_;
};

}  // namespace analognf::analog
