// Sample-and-hold: the front-end block that freezes an analog feature
// while the pCAM array evaluates it.
//
// A real analog match pipeline cannot read a moving target: the DAC
// output is sampled onto a hold capacitor for the duration of the
// search. The hold is imperfect — the capacitor droops — which adds a
// time-dependent error term to RQ2's precision budget for slow searches.
#pragma once

#include <cstdint>

namespace analognf::analog {

class SampleAndHold {
 public:
  // `droop_v_per_s` is the hold-mode leakage slew toward 0 V
  // (>= 0; 0 = ideal hold).
  explicit SampleAndHold(double droop_v_per_s = 0.0);

  // Track mode: the output follows the input. Time must not go
  // backwards across calls (either mode).
  double Track(double t_s, double input_v);

  // Hold mode: returns the held value at time `t_s`, drooped toward 0 V
  // by elapsed hold time. Holding before any Track returns 0 V.
  double Hold(double t_s);

  double output() const { return output_v_; }
  bool holding() const { return holding_; }

 private:
  void CheckTime(double t_s);

  double droop_v_per_s_;
  double output_v_ = 0.0;
  double last_t_s_ = 0.0;
  bool primed_ = false;
  bool holding_ = false;
};

}  // namespace analognf::analog
