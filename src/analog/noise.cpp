#include "analognf/analog/noise.hpp"

#include <cmath>
#include <stdexcept>

#include "analognf/common/units.hpp"

namespace analognf::analog {

void ChannelParams::Validate() const {
  if (!(line_gain > 0.0) || line_gain > 1.0) {
    throw std::invalid_argument("ChannelParams: line_gain must be in (0,1]");
  }
  if (awgn_sigma_v < 0.0) {
    throw std::invalid_argument("ChannelParams: awgn_sigma_v < 0");
  }
  if (interference_peak_v < 0.0) {
    throw std::invalid_argument("ChannelParams: interference_peak_v < 0");
  }
}

AnalogChannel::AnalogChannel(ChannelParams params,
                             analognf::RandomStream rng)
    : params_(params), rng_(rng) {
  params_.Validate();
}

AnalogChannel AnalogChannel::MakeIdeal() {
  return AnalogChannel(ChannelParams::Ideal(), analognf::RandomStream(0));
}

double AnalogChannel::Transmit(double voltage_v) {
  double out = voltage_v * params_.line_gain;
  if (params_.interference_peak_v > 0.0) {
    out += params_.interference_peak_v * std::sin(phase_rad_);
    phase_rad_ += params_.interference_step_rad;
    if (phase_rad_ > 2.0 * M_PI) phase_rad_ -= 2.0 * M_PI;
  }
  if (params_.awgn_sigma_v > 0.0) {
    out += rng_.NextNormal(0.0, params_.awgn_sigma_v);
  }
  return out;
}

void AnalogChannel::TransmitBatch(const double* in, double* out,
                                  std::size_t count) {
  if (params_.IsStateless()) {
    // Pure gain: one vectorizable pass, no RNG or phase bookkeeping.
    const double gain = params_.line_gain;
    for (std::size_t i = 0; i < count; ++i) out[i] = in[i] * gain;
    return;
  }
  for (std::size_t i = 0; i < count; ++i) out[i] = Transmit(in[i]);
}

double ThermalNoiseSigmaV(double resistance_ohm, double bandwidth_hz,
                          double temperature_k) {
  if (resistance_ohm < 0.0 || bandwidth_hz < 0.0 || temperature_k < 0.0) {
    throw std::invalid_argument("ThermalNoiseSigmaV: negative argument");
  }
  return std::sqrt(4.0 * analognf::kBoltzmann * temperature_k *
                   resistance_ohm * bandwidth_hz);
}

}  // namespace analognf::analog
