#include "analognf/analog/converter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace analognf::analog {
namespace {

void CheckBits(unsigned bits) {
  if (bits < 1 || bits > 24) {
    throw std::invalid_argument("converter: bits must be in [1, 24]");
  }
}

void CheckInl(double inl_sigma_lsb) {
  if (inl_sigma_lsb < 0.0) {
    throw std::invalid_argument("converter: inl_sigma_lsb < 0");
  }
}

}  // namespace

Dac::Dac(LinearMap map, unsigned bits, double inl_sigma_lsb,
         std::uint64_t noise_seed)
    : map_(map),
      bits_(bits),
      inl_sigma_lsb_(inl_sigma_lsb),
      rng_(noise_seed) {
  CheckBits(bits);
  CheckInl(inl_sigma_lsb);
  lsb_ = map_.range().span() / static_cast<double>((1u << bits_) - 1u);
}

Adc::Adc(LinearMap map, unsigned bits, double inl_sigma_lsb,
         std::uint64_t noise_seed)
    : map_(map),
      bits_(bits),
      inl_sigma_lsb_(inl_sigma_lsb),
      rng_(noise_seed) {
  CheckBits(bits);
  CheckInl(inl_sigma_lsb);
}

double Adc::LsbVolts() const {
  return map_.range().span() / static_cast<double>((1u << bits_) - 1u);
}

std::uint32_t Adc::Sample(double voltage_v) {
  double v = voltage_v;
  const double lsb = LsbVolts();
  if (inl_sigma_lsb_ > 0.0) {
    v += rng_.NextNormal(0.0, inl_sigma_lsb_ * lsb);
  }
  v = map_.range().Clamp(v);
  const double code = std::round((v - map_.range().lo_v) / lsb);
  const auto max_code = static_cast<double>((1u << bits_) - 1u);
  return static_cast<std::uint32_t>(std::clamp(code, 0.0, max_code));
}

double Adc::Convert(double voltage_v) {
  const std::uint32_t code = Sample(voltage_v);
  const double v =
      map_.range().lo_v + static_cast<double>(code) * LsbVolts();
  return map_.ToFeature(v);
}

}  // namespace analognf::analog
