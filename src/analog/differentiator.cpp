#include "analognf/analog/differentiator.hpp"

#include <cmath>

namespace analognf::analog {

Differentiator::Differentiator(double time_constant_s)
    : time_constant_s_(time_constant_s) {
  if (!(time_constant_s > 0.0)) {
    throw std::invalid_argument("Differentiator: time constant <= 0");
  }
}

double Differentiator::Step(double t_s, double x) {
  if (!primed_) {
    primed_ = true;
    last_t_s_ = t_s;
    smoothed_ = x;
    output_ = 0.0;
    return output_;
  }
  const double dt = t_s - last_t_s_;
  if (dt < 0.0) {
    throw std::invalid_argument("Differentiator::Step: time went backwards");
  }
  if (dt == 0.0) return output_;  // coincident sample: hold output
  // First-order low-pass with exact discretisation, then finite
  // difference of the smoothed signal.
  const double alpha = 1.0 - std::exp(-dt / time_constant_s_);
  const double prev_smoothed = smoothed_;
  smoothed_ += alpha * (x - smoothed_);
  output_ = (smoothed_ - prev_smoothed) / dt;
  last_t_s_ = t_s;
  return output_;
}

void Differentiator::Reset() {
  primed_ = false;
  last_t_s_ = 0.0;
  smoothed_ = 0.0;
  output_ = 0.0;
}

DerivativeChain::DerivativeChain(std::size_t max_order,
                                 double time_constant_s)
    : time_constant_s_(time_constant_s) {
  if (max_order < 1 || max_order > kMaxSupportedOrder) {
    throw std::invalid_argument(
        "DerivativeChain: max_order out of [1, kMaxSupportedOrder]");
  }
  stages_.reserve(max_order);
  for (std::size_t i = 0; i < max_order; ++i) {
    stages_.emplace_back(time_constant_s);
  }
  outputs_.assign(max_order + 1, 0.0);
}

const std::vector<double>& DerivativeChain::Step(double t_s, double x) {
  outputs_[0] = x;
  if (!primed_) {
    // First sample primes every stage through the cascade (stage k sees
    // the zero output of stage k-1), exactly as per-stage Step() does.
    primed_ = true;
    last_t_s_ = t_s;
    double value = x;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      value = stages_[i].Step(t_s, value);
      outputs_[i + 1] = value;
    }
    return outputs_;
  }
  const double dt = t_s - last_t_s_;
  if (dt < 0.0) {
    throw std::invalid_argument("Differentiator::Step: time went backwards");
  }
  if (dt == 0.0) {
    // Coincident sample: every stage holds its output, so outputs_[1..]
    // already contain exactly what per-stage Step() would return. Only
    // the order-0 lane (the raw input) updates. This is the common case
    // in batched processing, where a whole batch shares one timestamp.
    return outputs_;
  }
  // One exp() per chain sample: all stages share the same dt and time
  // constant, so alpha is chain-wide — and dt itself repeats across
  // samples on a fixed-tick clock, so cache the last mapping too.
  if (dt != cached_dt_) {
    cached_dt_ = dt;
    cached_alpha_ = 1.0 - std::exp(-dt / time_constant_s_);
  }
  double value = x;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    value = stages_[i].StepWithAlpha(t_s, dt, cached_alpha_, value);
    outputs_[i + 1] = value;
  }
  last_t_s_ = t_s;
  return outputs_;
}

void DerivativeChain::Reset() {
  for (Differentiator& d : stages_) d.Reset();
  outputs_.assign(outputs_.size(), 0.0);
  primed_ = false;
  last_t_s_ = 0.0;
  cached_dt_ = -1.0;
  cached_alpha_ = 0.0;
}

}  // namespace analognf::analog
