#include "analognf/sim/closed_loop.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace analognf::sim {

void ClosedLoopConfig::Validate() const {
  if (sources == 0) {
    throw std::invalid_argument("ClosedLoopConfig: zero sources");
  }
  if (!(base_rtt_s > 0.0)) {
    throw std::invalid_argument("ClosedLoopConfig: base_rtt <= 0");
  }
  if (segment_bytes == 0) {
    throw std::invalid_argument("ClosedLoopConfig: zero segment size");
  }
  if (!(initial_cwnd >= min_cwnd) || !(max_cwnd >= initial_cwnd) ||
      !(min_cwnd > 0.0)) {
    throw std::invalid_argument(
        "ClosedLoopConfig: require 0 < min_cwnd <= initial_cwnd <= max_cwnd");
  }
  if (ecn_fraction < 0.0 || ecn_fraction > 1.0) {
    throw std::invalid_argument("ClosedLoopConfig: ecn_fraction outside [0,1]");
  }
  if (!(duration_s > 0.0) || warmup_s < 0.0 || warmup_s >= duration_s) {
    throw std::invalid_argument("ClosedLoopConfig: bad duration/warmup");
  }
  if (!(link_rate_bps > 0.0)) {
    throw std::invalid_argument("ClosedLoopConfig: link rate <= 0");
  }
}

double ClosedLoopReport::FairnessIndex() const {
  if (per_source_goodput_pps.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double g : per_source_goodput_pps) {
    sum += g;
    sum_sq += g * g;
  }
  if (sum_sq <= 0.0) return 0.0;
  const auto n = static_cast<double>(per_source_goodput_pps.size());
  return sum * sum / (n * sum_sq);
}

double ClosedLoopReport::LinkUtilization(double link_rate_bps,
                                         std::uint32_t segment_bytes) const {
  if (!(link_rate_bps > 0.0)) return 0.0;
  double delivered_pps = 0.0;
  for (double g : per_source_goodput_pps) delivered_pps += g;
  const double utilization = delivered_pps *
                             static_cast<double>(segment_bytes) * 8.0 /
                             link_rate_bps;
  return std::min(1.0, utilization);
}

ClosedLoopSimulator::ClosedLoopSimulator(ClosedLoopConfig config,
                                         aqm::AqmPolicy& policy)
    : config_([&] {
        config.Validate();
        return config;
      }()),
      policy_(policy),
      queue_(config_.queue) {
  sources_.resize(config_.sources);
  const auto ecn_count = static_cast<std::size_t>(
      config_.ecn_fraction * static_cast<double>(config_.sources) + 0.5);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    sources_[i].cwnd = config_.initial_cwnd;
    sources_[i].ecn = i < ecn_count;
  }
}

void ClosedLoopSimulator::ScheduleSend(std::size_t source) {
  Source& src = sources_[source];
  // Rate-pacing approximation of a window: cwnd segments per RTT.
  const double interval = config_.base_rtt_s / src.cwnd;
  src.next_send_s = std::max(src.next_send_s + interval, events_.now());
  if (src.next_send_s > config_.duration_s) return;
  events_.Schedule(src.next_send_s, [this, source] { SendFrom(source); });
}

void ClosedLoopSimulator::SendFrom(std::size_t source) {
  const double now = events_.now();
  Source& src = sources_[source];
  ++report_.offered_packets;

  net::PacketMeta packet;
  packet.id = next_packet_id_++;
  packet.arrival_time_s = now;
  packet.size_bytes = config_.segment_bytes;
  packet.flow_hash = source;
  packet.ecn_capable = src.ecn;

  aqm::AqmContext ctx;
  ctx.now_s = now;
  ctx.sojourn_s = queue_.HeadSojourn(now);
  ctx.queue_bytes = queue_.bytes();
  ctx.queue_packets = queue_.packets();
  ctx.packet = packet;

  const aqm::AqmVerdict verdict = policy_.DecideOnEnqueue(ctx);
  if (verdict == aqm::AqmVerdict::kDrop) {
    queue_.NoteAqmDrop(packet);
    ++report_.dropped_packets;
    // Loss detected about one RTT later (dupack/timeout analogue).
    events_.ScheduleIn(config_.base_rtt_s, [this, source] {
      OnAck(source, /*congestion_signal=*/true, events_.now());
    });
  } else {
    if (verdict == aqm::AqmVerdict::kMark) {
      packet.ecn_marked = true;
      ++report_.marked_packets;
    }
    if (queue_.Enqueue(packet, now)) {
      if (!server_busy_) {
        server_busy_ = true;
        const double service = static_cast<double>(config_.segment_bytes) *
                               8.0 / config_.link_rate_bps;
        events_.ScheduleIn(service, [this] { OnDeparture(); });
      }
    } else {
      ++report_.dropped_packets;
      events_.ScheduleIn(config_.base_rtt_s, [this, source] {
        OnAck(source, /*congestion_signal=*/true, events_.now());
      });
    }
  }
  ScheduleSend(source);
}

void ClosedLoopSimulator::OnDeparture() {
  const double now = events_.now();
  server_busy_ = false;

  auto dequeued = queue_.Dequeue(now);
  while (dequeued.has_value()) {
    aqm::AqmContext ctx;
    ctx.now_s = now;
    ctx.sojourn_s = dequeued->sojourn_s;
    ctx.queue_bytes = queue_.bytes();
    ctx.queue_packets = queue_.packets();
    ctx.packet = dequeued->meta;
    if (!policy_.ShouldDropOnDequeue(ctx)) break;
    queue_.NoteAqmDrop(dequeued->meta);
    ++report_.dropped_packets;
    const auto source = static_cast<std::size_t>(dequeued->meta.flow_hash);
    events_.ScheduleIn(config_.base_rtt_s, [this, source] {
      OnAck(source, /*congestion_signal=*/true, events_.now());
    });
    dequeued = queue_.Dequeue(now);
  }
  if (!dequeued.has_value()) return;

  report_.delay.Append(now, dequeued->sojourn_s);
  ++report_.delivered_packets;
  if (now >= config_.warmup_s) {
    report_.delay_stats.Add(dequeued->sojourn_s);
    ++sources_[static_cast<std::size_t>(dequeued->meta.flow_hash)]
          .delivered_post_warmup;
  }
  // Ack arrives half an RTT later; a CE mark rides back on it.
  const auto source = static_cast<std::size_t>(dequeued->meta.flow_hash);
  const bool marked = dequeued->meta.ecn_marked;
  events_.ScheduleIn(config_.base_rtt_s / 2.0, [this, source, marked] {
    OnAck(source, marked, events_.now());
  });

  if (!queue_.empty()) {
    server_busy_ = true;
    const double service = static_cast<double>(config_.segment_bytes) *
                           8.0 / config_.link_rate_bps;
    events_.ScheduleIn(service, [this] { OnDeparture(); });
  }
}

void ClosedLoopSimulator::Decrease(std::size_t source, double now_s) {
  Source& src = sources_[source];
  if (now_s < src.decrease_blocked_until_s) return;
  src.cwnd = std::max(config_.min_cwnd, src.cwnd / 2.0);
  src.decrease_blocked_until_s = now_s + config_.base_rtt_s;
}

void ClosedLoopSimulator::OnAck(std::size_t source, bool congestion_signal,
                                double now_s) {
  Source& src = sources_[source];
  if (congestion_signal) {
    Decrease(source, now_s);
  } else {
    // Additive increase: one segment per window's worth of acks.
    src.cwnd = std::min(config_.max_cwnd, src.cwnd + 1.0 / src.cwnd);
  }
}

ClosedLoopReport ClosedLoopSimulator::Run() {
  report_ = ClosedLoopReport{};
  report_.duration_s = config_.duration_s;
  report_.warmup_s = config_.warmup_s;

  // Stagger source start times to avoid phase locking.
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const double start =
        config_.base_rtt_s * static_cast<double>(i) /
        static_cast<double>(sources_.size());
    sources_[i].next_send_s = start;
    events_.Schedule(start, [this, i] { SendFrom(i); });
  }

  // Sample the aggregate congestion window.
  const double sample_dt = 0.05;
  std::function<void()> sampler = [this, sample_dt, &sampler] {
    double total = 0.0;
    for (const Source& s : sources_) total += s.cwnd;
    report_.total_cwnd.Append(events_.now(), total);
    if (events_.now() + sample_dt <= config_.duration_s) {
      events_.ScheduleIn(sample_dt, sampler);
    }
  };
  events_.Schedule(0.0, sampler);

  events_.RunUntil(config_.duration_s);

  const double measured_s = config_.duration_s - config_.warmup_s;
  report_.per_source_goodput_pps.reserve(sources_.size());
  for (const Source& s : sources_) {
    report_.per_source_goodput_pps.push_back(
        static_cast<double>(s.delivered_post_warmup) / measured_s);
  }
  report_.residual_packets = queue_.packets();
  return report_;
}

}  // namespace analognf::sim
