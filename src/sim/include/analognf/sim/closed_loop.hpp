// Closed-loop simulation: AIMD (TCP-like) sources reacting to the AQM.
//
// The open-loop Poisson experiments reproduce the paper's Fig. 8; this
// harness adds what a deployed AQM actually faces — congestion-
// controlled senders. Each source paces packets at cwnd/RTT; a delivered
// packet acks after RTT/2 and grows the window (additive increase,
// 1/cwnd per ack); a drop or an ECN CE mark halves it (multiplicative
// decrease, at most once per RTT). This is the workload where ECN
// marking genuinely sheds load without losing packets, and where
// CoDel's design assumptions hold.
#pragma once

#include <cstdint>
#include <vector>

#include "analognf/aqm/aqm.hpp"
#include "analognf/common/stats.hpp"
#include "analognf/common/timeseries.hpp"
#include "analognf/net/queue.hpp"
#include "analognf/sim/event_queue.hpp"

namespace analognf::sim {

struct ClosedLoopConfig {
  std::size_t sources = 8;
  // Two-way propagation delay per source (excludes queueing).
  double base_rtt_s = 0.040;
  std::uint32_t segment_bytes = 1000;
  double initial_cwnd = 2.0;
  double min_cwnd = 1.0;
  double max_cwnd = 256.0;
  // Fraction of sources that negotiate ECN.
  double ecn_fraction = 0.0;
  double duration_s = 20.0;
  double warmup_s = 5.0;
  double link_rate_bps = 10.0e6;
  net::PacketQueue::Config queue{};
  std::uint64_t seed = 0x7c9;

  void Validate() const;  // throws std::invalid_argument
};

struct ClosedLoopReport {
  analognf::TimeSeries delay{"sojourn_s"};
  analognf::TimeSeries total_cwnd{"cwnd_pkts"};
  analognf::RunningStats delay_stats;  // post-warmup
  std::uint64_t offered_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped_packets = 0;  // AQM + tail drops
  std::uint64_t marked_packets = 0;
  // Packets still sitting in the queue when the run ended. Conservation
  // holds exactly: offered == delivered + dropped + residual.
  std::uint64_t residual_packets = 0;
  std::vector<double> per_source_goodput_pps;  // post-warmup
  double duration_s = 0.0;
  double warmup_s = 0.0;

  // Jain's fairness index over per-source goodput (1 = perfectly fair).
  double FairnessIndex() const;
  // Post-warmup goodput as a fraction of link capacity, capped at 1.0
  // (warmup-boundary effects can push the raw ratio slightly over).
  double LinkUtilization(double link_rate_bps,
                         std::uint32_t segment_bytes) const;
};

class ClosedLoopSimulator {
 public:
  ClosedLoopSimulator(ClosedLoopConfig config, aqm::AqmPolicy& policy);

  ClosedLoopReport Run();

 private:
  struct Source {
    double cwnd = 2.0;
    bool ecn = false;
    double next_send_s = 0.0;
    // Multiplicative decrease is applied at most once per RTT.
    double decrease_blocked_until_s = 0.0;
    std::uint64_t delivered_post_warmup = 0;
  };

  void SendFrom(std::size_t source);
  void ScheduleSend(std::size_t source);
  void OnDeparture();
  void OnAck(std::size_t source, bool congestion_signal, double now_s);
  void Decrease(std::size_t source, double now_s);

  ClosedLoopConfig config_;
  aqm::AqmPolicy& policy_;
  EventQueue events_;
  net::PacketQueue queue_;
  std::vector<Source> sources_;
  bool server_busy_ = false;
  std::uint64_t next_packet_id_ = 0;
  ClosedLoopReport report_;
};

}  // namespace analognf::sim
