// Declarative AQM scenario grid: the shoot-out harness.
//
// The paper's headline result (Figs. 6-8) is the analog pCAM AQM
// holding its programmed 20 ms +/- 10 ms delay band at ~nJ/decision.
// This runner makes that claim a standing head-to-head: it sweeps
//
//   policy x base RTT x load x ECN fraction
//
// in the style of L4STeam/aqmt's testbed collections, executing every
// cell on BOTH simulators — the open-loop Poisson QueueSimulator (the
// Fig. 8 workload, unresponsive) and the AIMD ClosedLoopSimulator
// (responsive sources, where ECN genuinely sheds load) — and reports
// per cell: delay-target adherence (fraction of post-warmup deliveries
// inside target +/- deviation), p50/p99 sojourn, drop/mark rates, Jain
// fairness, link utilization, and nJ per AQM decision.
//
// Axis semantics:
//  - base RTT sizes the bottleneck buffer (buffer_bdp_multiple x BDP,
//    the standard testbed provisioning rule), drives the closed loop's
//    propagation delay, and scales CoDel's interval (RFC 8289: interval
//    should cover the worst-case RTT).
//  - load carries one open-loop level (Poisson rate as a fraction of
//    link capacity) and one closed-loop level (AIMD source count).
//  - ECN fraction sets the share of ECN-capable traffic. Policies with
//    a native mark path (analog AQM, PI2) use it directly; PIE marks
//    below RFC 8033's mark_ecnth, RED marks all early drops (RFC 3168);
//    CoDel stays drop-only (marking at dequeue is not in the sim API).
//
// Energy: the analog AQM reports its own ledger (the aCAM cost model —
// DACs, derivative chains, pCAM search). Digital policies are wrapped
// in a metering harness that charges a DataMovementModel cost per
// decision over the policy's state footprint, so every cell's
// nJ/decision comes from an EnergyLedger with like-for-like categories.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analognf/sim/closed_loop.hpp"
#include "analognf/sim/queue_sim.hpp"

namespace analognf::sim {

// The policy axis. kRed is the gentle-RED single profile; kWred the
// priority-differentiated pair; kTailDrop the no-AQM reference.
enum class AqmPolicyKind {
  kAnalog,
  kPie,
  kPi2,
  kCodel,
  kRed,
  kWred,
  kTailDrop,
};

const char* ToString(AqmPolicyKind kind);
bool IsDigital(AqmPolicyKind kind);  // false for kAnalog and kTailDrop

enum class GridSimulator { kOpenLoop, kClosedLoop };
const char* ToString(GridSimulator simulator);

// One point on the load axis: both simulators' levels travel together
// so a "cell" means the same nominal pressure on either harness.
struct GridLoad {
  std::string label;              // e.g. "0.9x" or "overload"
  double offered_fraction = 0.9;  // open loop: Poisson rate / capacity
  std::size_t sources = 8;        // closed loop: AIMD source count
};

struct GridSpec {
  std::vector<AqmPolicyKind> policies;
  std::vector<double> base_rtts_s;
  std::vector<GridLoad> loads;
  std::vector<double> ecn_fractions;

  double link_rate_bps = 10.0e6;
  std::uint32_t segment_bytes = 1000;
  std::uint32_t open_loop_flows = 16;  // Poisson flow population

  double open_duration_s = 12.0;
  double open_warmup_s = 3.0;
  double closed_duration_s = 20.0;
  double closed_warmup_s = 6.0;

  // The adherence band, and the delay target every policy is programmed
  // for (the analog AQM's pCAM ramp, PIE/PI2's target, CoDel's target,
  // RED's threshold placement) — matched targets, per the shoot-out's
  // like-for-like rule.
  double target_delay_s = 0.020;
  double max_deviation_s = 0.010;

  // Bottleneck buffer: this many bandwidth-delay products of the cell's
  // base RTT (bytes). Ties the RTT axis into the open-loop harness too:
  // tail-drop headroom and worst-case standing delay scale with RTT.
  double buffer_bdp_multiple = 4.0;

  std::uint64_t seed = 0x5107;

  void Validate() const;  // throws std::invalid_argument
  std::size_t CellCount() const;  // policies x rtts x loads x ecns x 2

  // The checked-in CI grid: {analog, PIE, PI2, CoDel, RED} x
  // {10, 40, 100 ms} x {0.9x/4src, 1.4x/16src} x {0, 0.5, 1.0}.
  static GridSpec Default();
};

// One executed cell.
struct GridCellResult {
  AqmPolicyKind policy = AqmPolicyKind::kTailDrop;
  GridSimulator simulator = GridSimulator::kOpenLoop;
  double base_rtt_s = 0.0;
  GridLoad load;
  double ecn_fraction = 0.0;

  // Fraction of post-warmup deliveries with sojourn inside
  // [target - deviation, target + deviation].
  double adherence = 0.0;
  double mean_sojourn_s = 0.0;
  double p50_sojourn_s = 0.0;
  double p99_sojourn_s = 0.0;
  double drop_rate = 0.0;  // all drops / offered
  double mark_rate = 0.0;  // CE marks / offered
  double fairness = 0.0;   // Jain index (flows open loop, sources closed)
  double utilization = 0.0;

  std::uint64_t offered_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t marked_packets = 0;

  std::uint64_t decisions = 0;  // AQM decision-point invocations charged
  double energy_nj_per_decision = 0.0;
};

struct GridReport {
  GridSpec spec;
  std::vector<GridCellResult> cells;  // deterministic sweep order

  // Mean adherence of `policy` cells on `simulator` at load `label`,
  // averaged across the RTT and ECN axes. Returns -1 if no such cells.
  double MeanAdherence(AqmPolicyKind policy, GridSimulator simulator,
                       const std::string& load_label) const;
  // Analog adherence minus the best digital policy's, at matched
  // (simulator, load). Positive = the analog AQM holds its band at
  // least as well as the best digital baseline.
  double AdherenceMargin(GridSimulator simulator,
                         const std::string& load_label) const;
  // Worst margin across the load axis for one simulator — the gate the
  // bench budget watches.
  double MinAdherenceMargin(GridSimulator simulator) const;
};

class ExperimentGrid {
 public:
  explicit ExperimentGrid(GridSpec spec);

  // Runs every cell (policy-major, then RTT, load, ECN; open loop
  // before closed loop). Deterministic: per-cell seeds are derived from
  // spec.seed and the cell's coordinates, so the same spec reproduces
  // the same report bit-for-bit.
  GridReport Run();

  // Optional per-cell progress hook (the bench uses it to stream rows).
  using CellCallback = std::function<void(const GridCellResult&)>;
  void SetCellCallback(CellCallback callback) {
    callback_ = std::move(callback);
  }

 private:
  GridCellResult RunOpenLoop(AqmPolicyKind policy, double rtt_s,
                             const GridLoad& load, double ecn_fraction,
                             std::uint64_t cell_seed) const;
  GridCellResult RunClosedLoop(AqmPolicyKind policy, double rtt_s,
                               const GridLoad& load, double ecn_fraction,
                               std::uint64_t cell_seed) const;
  std::uint64_t BufferBytes(double rtt_s) const;

  GridSpec spec_;
  CellCallback callback_;
};

}  // namespace analognf::sim
