// Discrete-event simulation core.
//
// A minimal calendar: events are (time, callback) pairs executed in time
// order, with FIFO tie-breaking via a monotone sequence number so
// same-timestamp events run in scheduling order (deterministic replay).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace analognf::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `callback` at absolute time `time_s`, which must not
  // precede the current simulation time.
  void Schedule(double time_s, Callback callback);
  // Convenience: schedule relative to now.
  void ScheduleIn(double delay_s, Callback callback);

  // Executes the earliest event. Returns false if the calendar is empty.
  bool RunNext();
  // Runs events until the calendar is empty or the next event is after
  // `t_end_s`. The clock advances to min(t_end_s, last event time).
  void RunUntil(double t_end_s);

  double now() const { return now_s_; }
  bool empty() const { return heap_.empty(); }
  std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    double time_s;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_s_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace analognf::sim
