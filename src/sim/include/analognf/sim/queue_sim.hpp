// Single-queue link simulation: the Fig. 8 experiment harness.
//
// A traffic generator feeds a FIFO queue drained by a fixed-rate link.
// An AQM policy sees every admission (enqueue hook) and every head
// departure (dequeue hook). The simulator records the delay-versus-time
// trace the paper plots, plus queue depth, drop-probability samples and
// the AQM's energy account.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "analognf/aqm/aqm.hpp"
#include "analognf/aqm/controller.hpp"
#include "analognf/common/quantile.hpp"
#include "analognf/common/stats.hpp"
#include "analognf/common/timeseries.hpp"
#include "analognf/net/queue.hpp"
#include "analognf/sim/event_queue.hpp"
#include "analognf/telemetry/metrics.hpp"

namespace analognf::sim {

// A scheduled offered-load change (the congestion phases of Fig. 8).
// Applies only when the simulator is driven by a PoissonGenerator.
struct RatePhase {
  double start_s = 0.0;
  double rate_pps = 0.0;
};

struct QueueSimConfig {
  double duration_s = 20.0;
  // Samples before this time are excluded from the summary statistics
  // (they still appear in the traces).
  double warmup_s = 2.0;
  double link_rate_bps = 10.0e6;
  net::PacketQueue::Config queue{};
  std::vector<RatePhase> phases;
  // Queue-depth sampling period for the depth trace.
  double sample_interval_s = 0.02;

  void Validate() const;  // throws std::invalid_argument
};

struct SimReport {
  analognf::TimeSeries delay{"sojourn_s"};        // per delivered packet
  analognf::TimeSeries queue_depth{"queue_pkts"};
  analognf::TimeSeries drop_prob{"pdp"};          // policy PDP samples
  net::QueueStats queue_stats;
  // Post-warmup summaries.
  analognf::RunningStats delay_stats;
  // Streaming p99 of post-warmup delays (P-square; O(1) memory even on
  // very long runs).
  analognf::P2Quantile delay_p99{0.99};
  analognf::RunningStats delay_stats_high_priority;
  analognf::RunningStats delay_stats_low_priority;
  std::uint64_t offered_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t ecn_marked_packets = 0;
  std::uint64_t delivered_marked_packets = 0;
  // Post-warmup deliveries per flow (keyed by flow_hash): the open-loop
  // analogue of the closed loop's per-source goodput, for Jain fairness
  // in the experiment grid.
  std::map<std::uint64_t, std::uint64_t> delivered_by_flow;
  double delivered_bytes = 0.0;
  double duration_s = 0.0;
  double warmup_s = 0.0;
  double aqm_energy_j = 0.0;

  double DropRate() const;        // all drops / offered
  double ThroughputBps() const;   // delivered payload bits per second
  // Fraction of post-warmup delay samples within [lo, hi] seconds — the
  // "delays kept within the programmed latency bounds" metric.
  double DelayFractionWithin(double lo_s, double hi_s) const;
  // Jain's fairness index over per-flow post-warmup deliveries
  // (1 = perfectly fair; 0 when nothing was delivered post-warmup).
  double FlowFairnessIndex() const;
};

// Registry handles a bound QueueSimulator reports into (`sim.*` names).
struct SimTelemetry {
  telemetry::CounterHandle offered;      // packets the generator produced
  telemetry::CounterHandle delivered;    // packets that left the link
  telemetry::HistogramHandle sojourn_us; // per-delivery sojourn [µs]
  telemetry::GaugeHandle queue_depth;    // occupancy at sample instants
};

class QueueSimulator {
 public:
  // `controller` may be null (no adaptation). If `poisson` is non-null,
  // config.phases drive SetRate on it.
  QueueSimulator(QueueSimConfig config, net::TrafficGenerator& generator,
                 aqm::AqmPolicy& policy,
                 aqm::CognitiveAqmController* controller = nullptr,
                 net::PoissonGenerator* poisson = nullptr);

  // Binds `sim.offered/.delivered` counters, the `sim.sojourn_us`
  // histogram and the `sim.queue_depth` gauge. Telemetry never changes
  // the simulation: the report and traces are byte-identical either way.
  void BindTelemetry(telemetry::MetricsRegistry& registry);
  const SimTelemetry& telemetry() const { return telemetry_; }

  SimReport Run();

 private:
  void OnArrival(const net::PacketMeta& packet);
  void StartServiceIfIdle();
  void OnDeparture();
  void ScheduleNextArrival();
  void SamplePdp();

  QueueSimConfig config_;
  net::TrafficGenerator& generator_;
  aqm::AqmPolicy& policy_;
  aqm::CognitiveAqmController* controller_;
  net::PoissonGenerator* poisson_;

  EventQueue events_;
  net::PacketQueue queue_;
  bool server_busy_ = false;
  std::size_t next_phase_ = 0;
  SimReport report_;
  SimTelemetry telemetry_;
};

}  // namespace analognf::sim
