#include "analognf/sim/queue_sim.hpp"

#include <cmath>
#include <stdexcept>

#include "analognf/aqm/analog_aqm.hpp"

namespace analognf::sim {

void QueueSimConfig::Validate() const {
  if (!(duration_s > 0.0)) {
    throw std::invalid_argument("QueueSimConfig: duration <= 0");
  }
  if (warmup_s < 0.0 || warmup_s >= duration_s) {
    throw std::invalid_argument(
        "QueueSimConfig: warmup must be in [0, duration)");
  }
  if (!(link_rate_bps > 0.0)) {
    throw std::invalid_argument("QueueSimConfig: link rate <= 0");
  }
  if (!(sample_interval_s > 0.0)) {
    throw std::invalid_argument("QueueSimConfig: sample interval <= 0");
  }
  for (std::size_t i = 1; i < phases.size(); ++i) {
    if (phases[i].start_s < phases[i - 1].start_s) {
      throw std::invalid_argument("QueueSimConfig: phases out of order");
    }
  }
}

double SimReport::DropRate() const {
  if (offered_packets == 0) return 0.0;
  const std::uint64_t drops =
      queue_stats.dropped_full + queue_stats.dropped_aqm;
  return static_cast<double>(drops) / static_cast<double>(offered_packets);
}

double SimReport::ThroughputBps() const {
  if (duration_s <= 0.0) return 0.0;
  return delivered_bytes * 8.0 / duration_s;
}

double SimReport::FlowFairnessIndex() const {
  if (delivered_by_flow.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& [flow, delivered] : delivered_by_flow) {
    const auto d = static_cast<double>(delivered);
    sum += d;
    sum_sq += d * d;
  }
  if (sum_sq <= 0.0) return 0.0;
  const auto n = static_cast<double>(delivered_by_flow.size());
  return sum * sum / (n * sum_sq);
}

double SimReport::DelayFractionWithin(double lo_s, double hi_s) const {
  std::size_t inside = 0;
  std::size_t total = 0;
  for (const auto& p : delay.points()) {
    if (p.time < warmup_s) continue;
    ++total;
    if (p.value >= lo_s && p.value <= hi_s) ++inside;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(inside) /
                          static_cast<double>(total);
}

QueueSimulator::QueueSimulator(QueueSimConfig config,
                               net::TrafficGenerator& generator,
                               aqm::AqmPolicy& policy,
                               aqm::CognitiveAqmController* controller,
                               net::PoissonGenerator* poisson)
    : config_(config),
      generator_(generator),
      policy_(policy),
      controller_(controller),
      poisson_(poisson),
      queue_(config.queue) {
  config_.Validate();
}

void QueueSimulator::BindTelemetry(telemetry::MetricsRegistry& registry) {
  telemetry_.offered = registry.GetCounter("sim.offered");
  telemetry_.delivered = registry.GetCounter("sim.delivered");
  // Sojourns span microseconds (an idle fast link) to whole seconds of
  // standing-queue delay: 1 µs doubling 30 times reaches ~17 minutes.
  telemetry::HistogramSpec sojourn_spec;
  sojourn_spec.first_bound = 1.0;
  sojourn_spec.growth = 2.0;
  sojourn_spec.buckets = 30;
  telemetry_.sojourn_us =
      registry.GetHistogram("sim.sojourn_us", sojourn_spec);
  telemetry_.queue_depth = registry.GetGauge("sim.queue_depth");
}

void QueueSimulator::ScheduleNextArrival() {
  net::PacketMeta packet = generator_.Next();
  if (packet.arrival_time_s > config_.duration_s) return;
  events_.Schedule(packet.arrival_time_s,
                   [this, packet] { OnArrival(packet); });
}

void QueueSimulator::SamplePdp() {
  const double pdp = policy_.LastDropProbability();
  if (std::isfinite(pdp)) {
    report_.drop_prob.Append(events_.now(), pdp);
  }
}

void QueueSimulator::OnArrival(const net::PacketMeta& packet) {
  const double now = events_.now();
  ++report_.offered_packets;
  telemetry_.offered.Inc();

  // Apply any pending offered-load phase changes.
  while (poisson_ != nullptr && next_phase_ < config_.phases.size() &&
         config_.phases[next_phase_].start_s <= now) {
    poisson_->SetRate(config_.phases[next_phase_].rate_pps);
    ++next_phase_;
  }

  aqm::AqmContext ctx;
  ctx.now_s = now;
  ctx.sojourn_s = queue_.HeadSojourn(now);
  ctx.queue_bytes = queue_.bytes();
  ctx.queue_packets = queue_.packets();
  ctx.packet = packet;

  const aqm::AqmVerdict verdict = policy_.DecideOnEnqueue(ctx);
  SamplePdp();
  if (verdict == aqm::AqmVerdict::kDrop) {
    queue_.NoteAqmDrop(packet);
  } else {
    net::PacketMeta admitted = packet;
    if (verdict == aqm::AqmVerdict::kMark) {
      admitted.ecn_marked = true;
      ++report_.ecn_marked_packets;
    }
    if (queue_.Enqueue(admitted, now)) {
      StartServiceIfIdle();
    }
  }
  ScheduleNextArrival();
}

void QueueSimulator::StartServiceIfIdle() {
  if (server_busy_) return;
  const net::PacketMeta* head = queue_.Peek();
  if (head == nullptr) return;
  server_busy_ = true;
  const double service_s =
      static_cast<double>(head->size_bytes) * 8.0 / config_.link_rate_bps;
  events_.ScheduleIn(service_s, [this] { OnDeparture(); });
}

void QueueSimulator::OnDeparture() {
  const double now = events_.now();
  server_busy_ = false;

  auto dequeued = queue_.Dequeue(now);
  if (!dequeued.has_value()) return;

  // CoDel-style head-drop loop: the policy may discard the head and the
  // server immediately takes the next packet in the same service slot.
  while (dequeued.has_value()) {
    aqm::AqmContext ctx;
    ctx.now_s = now;
    ctx.sojourn_s = dequeued->sojourn_s;
    ctx.queue_bytes = queue_.bytes();
    ctx.queue_packets = queue_.packets();
    ctx.packet = dequeued->meta;
    if (!policy_.ShouldDropOnDequeue(ctx)) break;
    queue_.NoteAqmDrop(dequeued->meta);
    dequeued = queue_.Dequeue(now);
  }
  if (!dequeued.has_value()) return;

  // Deliver.
  report_.delay.Append(now, dequeued->sojourn_s);
  ++report_.delivered_packets;
  telemetry_.delivered.Inc();
  telemetry_.sojourn_us.Observe(dequeued->sojourn_s * 1e6);
  if (dequeued->meta.ecn_marked) ++report_.delivered_marked_packets;
  report_.delivered_bytes += dequeued->meta.size_bytes;
  if (now >= config_.warmup_s) {
    report_.delay_stats.Add(dequeued->sojourn_s);
    report_.delay_p99.Add(dequeued->sojourn_s);
    ++report_.delivered_by_flow[dequeued->meta.flow_hash];
    if (dequeued->meta.priority >= 4) {
      report_.delay_stats_high_priority.Add(dequeued->sojourn_s);
    } else {
      report_.delay_stats_low_priority.Add(dequeued->sojourn_s);
    }
  }
  if (controller_ != nullptr) {
    controller_->ObserveDeparture(now, dequeued->sojourn_s);
  }
  StartServiceIfIdle();
}

SimReport QueueSimulator::Run() {
  report_ = SimReport{};

  // Pre-size the sampled traces: the sampler fires once per interval for
  // the whole run, and the PDP trace records one point per offered
  // packet-admission decision (bounded below by the sampler count).
  const std::size_t expected_samples =
      static_cast<std::size_t>(config_.duration_s /
                               config_.sample_interval_s) + 2;
  report_.queue_depth.Reserve(expected_samples);
  report_.drop_prob.Reserve(expected_samples);

  // Queue-depth sampling clock.
  const double sample_dt = config_.sample_interval_s;
  std::function<void()> sampler = [this, sample_dt, &sampler] {
    report_.queue_depth.Append(events_.now(),
                               static_cast<double>(queue_.packets()));
    telemetry_.queue_depth.Set(static_cast<double>(queue_.packets()));
    if (events_.now() + sample_dt <= config_.duration_s) {
      events_.ScheduleIn(sample_dt, sampler);
    }
  };
  events_.Schedule(0.0, sampler);

  ScheduleNextArrival();
  events_.RunUntil(config_.duration_s);

  report_.queue_stats = queue_.stats();
  report_.duration_s = config_.duration_s;
  report_.warmup_s = config_.warmup_s;
  if (auto* analog = dynamic_cast<aqm::AnalogAqm*>(&policy_)) {
    report_.aqm_energy_j = analog->ConsumedEnergyJ();
  }
  return report_;
}

}  // namespace analognf::sim
