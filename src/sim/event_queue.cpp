#include "analognf/sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace analognf::sim {

void EventQueue::Schedule(double time_s, Callback callback) {
  if (time_s < now_s_) {
    throw std::invalid_argument("EventQueue::Schedule: time in the past");
  }
  if (!callback) {
    throw std::invalid_argument("EventQueue::Schedule: empty callback");
  }
  heap_.push({time_s, next_seq_++, std::move(callback)});
}

void EventQueue::ScheduleIn(double delay_s, Callback callback) {
  Schedule(now_s_ + delay_s, std::move(callback));
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; moving the callback requires the
  // const_cast idiom or a copy — copy is fine at simulation scale.
  Event event = heap_.top();
  heap_.pop();
  now_s_ = event.time_s;
  ++processed_;
  event.callback();
  return true;
}

void EventQueue::RunUntil(double t_end_s) {
  while (!heap_.empty() && heap_.top().time_s <= t_end_s) {
    RunNext();
  }
  if (now_s_ < t_end_s) now_s_ = t_end_s;
}

}  // namespace analognf::sim
