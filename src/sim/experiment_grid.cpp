#include "analognf/sim/experiment_grid.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "analognf/aqm/analog_aqm.hpp"
#include "analognf/aqm/codel.hpp"
#include "analognf/aqm/pi2.hpp"
#include "analognf/aqm/pie.hpp"
#include "analognf/aqm/red.hpp"
#include "analognf/aqm/wred.hpp"
#include "analognf/common/stats.hpp"
#include "analognf/energy/ledger.hpp"
#include "analognf/energy/movement.hpp"
#include "analognf/net/generator.hpp"

namespace analognf::sim {
namespace {

// SplitMix64: per-cell seed derivation. Mixing the spec seed with the
// cell coordinates keeps every cell's random stream independent of grid
// shape edits (adding an RTT doesn't reshuffle the other cells).
std::uint64_t Mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t CellSeed(std::uint64_t base, std::uint64_t policy,
                       std::uint64_t rtt_idx, std::uint64_t load_idx,
                       std::uint64_t ecn_idx, std::uint64_t sim_idx) {
  std::uint64_t s = Mix(base ^ (policy << 1));
  s = Mix(s ^ (rtt_idx << 8));
  s = Mix(s ^ (load_idx << 16));
  s = Mix(s ^ (ecn_idx << 24));
  return Mix(s ^ (sim_idx << 32));
}

// How a digital policy is metered and ECN-adapted by the harness below.
struct HarnessSpec {
  // Controller state read-modified-written per decision (the operand the
  // DataMovementModel shuttles between SRAM and the ALU).
  std::uint64_t state_bits = 0;
  // Convert an ECN-capable packet's drop into a CE mark when the
  // policy's probability is strictly below this (RFC 8033's mark_ecnth
  // idea; RFC 3168 for RED). Negative = never mark (policy is either
  // drop-only or marks natively).
  double mark_threshold = -1.0;
  bool charge_enqueue = true;   // RED/PIE-family: decide at admission
  bool charge_dequeue = false;  // CoDel: decide at head departure
};

// Wraps a digital AQM so every decision point is charged a
// DataMovementModel cost into an EnergyLedger (compute + movement
// categories), making nJ/decision comparable with the analog ledger.
// Also retrofits RFC-style ECN marking onto drop-only enqueue policies.
class DigitalHarness final : public aqm::AqmPolicy {
 public:
  DigitalHarness(std::unique_ptr<aqm::AqmPolicy> inner, HarnessSpec spec)
      : inner_(std::move(inner)), spec_(spec) {
    const energy::MovementBreakdown cost =
        model_.CostOf(spec_.state_bits);
    compute_j_ = cost.compute_j;
    movement_j_ = cost.movement_j;
    AcquireMeters();
  }

  bool ShouldDropOnEnqueue(const aqm::AqmContext& ctx) override {
    if (spec_.charge_enqueue) Charge();
    return inner_->ShouldDropOnEnqueue(ctx);
  }

  aqm::AqmVerdict DecideOnEnqueue(const aqm::AqmContext& ctx) override {
    if (spec_.charge_enqueue) Charge();
    aqm::AqmVerdict verdict = inner_->DecideOnEnqueue(ctx);
    if (verdict == aqm::AqmVerdict::kDrop && ctx.packet.ecn_capable &&
        spec_.mark_threshold >= 0.0) {
      const double p = inner_->LastDropProbability();
      // Strict comparison: a saturated controller (p == 1, e.g. gentle
      // RED past 2*max_th) keeps dropping even ECN traffic, per the
      // RFC 3168 guidance that severe congestion must shed load.
      if (std::isfinite(p) && p < spec_.mark_threshold) {
        verdict = aqm::AqmVerdict::kMark;
      }
    }
    return verdict;
  }

  bool ShouldDropOnDequeue(const aqm::AqmContext& ctx) override {
    if (spec_.charge_dequeue) Charge();
    return inner_->ShouldDropOnDequeue(ctx);
  }

  std::string name() const override { return inner_->name(); }
  void Reset() override {
    inner_->Reset();
    ledger_.Reset();
    AcquireMeters();
    decisions_ = 0;
  }
  double LastDropProbability() const override {
    return inner_->LastDropProbability();
  }

  const energy::EnergyLedger& ledger() const { return ledger_; }
  std::uint64_t decisions() const { return decisions_; }
  double EnergyPerDecisionJ() const {
    return decisions_ == 0 ? 0.0
                           : ledger_.TotalJ() /
                                 static_cast<double>(decisions_);
  }

 private:
  void AcquireMeters() {
    compute_meter_ = ledger_.Meter(energy::category::kDigitalCompute);
    movement_meter_ = ledger_.Meter(energy::category::kDataMovement);
  }

  void Charge() {
    compute_meter_->energy_j += compute_j_;
    ++compute_meter_->operations;
    movement_meter_->energy_j += movement_j_;
    ++movement_meter_->operations;
    ++decisions_;
  }

  std::unique_ptr<aqm::AqmPolicy> inner_;
  HarnessSpec spec_;
  energy::DataMovementModel model_;
  energy::EnergyLedger ledger_;
  energy::CategoryTotal* compute_meter_ = nullptr;
  energy::CategoryTotal* movement_meter_ = nullptr;
  double compute_j_ = 0.0;
  double movement_j_ = 0.0;
  std::uint64_t decisions_ = 0;
};

// A cell's policy instance plus the views needed to read its energy.
struct CellPolicy {
  std::unique_ptr<aqm::AqmPolicy> policy;
  aqm::AnalogAqm* analog = nullptr;       // set iff kind == kAnalog
  DigitalHarness* harness = nullptr;      // set for digital kinds
};

}  // namespace

const char* ToString(AqmPolicyKind kind) {
  switch (kind) {
    case AqmPolicyKind::kAnalog: return "analog";
    case AqmPolicyKind::kPie: return "pie";
    case AqmPolicyKind::kPi2: return "pi2";
    case AqmPolicyKind::kCodel: return "codel";
    case AqmPolicyKind::kRed: return "red";
    case AqmPolicyKind::kWred: return "wred";
    case AqmPolicyKind::kTailDrop: return "taildrop";
  }
  return "?";
}

bool IsDigital(AqmPolicyKind kind) {
  return kind != AqmPolicyKind::kAnalog &&
         kind != AqmPolicyKind::kTailDrop;
}

const char* ToString(GridSimulator simulator) {
  return simulator == GridSimulator::kOpenLoop ? "open_loop"
                                               : "closed_loop";
}

void GridSpec::Validate() const {
  if (policies.empty() || base_rtts_s.empty() || loads.empty() ||
      ecn_fractions.empty()) {
    throw std::invalid_argument("GridSpec: every axis needs >= 1 value");
  }
  for (double rtt : base_rtts_s) {
    if (!(rtt > 0.0)) {
      throw std::invalid_argument("GridSpec: base RTT <= 0");
    }
  }
  for (const GridLoad& load : loads) {
    if (!(load.offered_fraction > 0.0) || load.sources == 0) {
      throw std::invalid_argument("GridSpec: bad load level");
    }
    if (load.label.empty()) {
      throw std::invalid_argument("GridSpec: load level needs a label");
    }
  }
  for (double ecn : ecn_fractions) {
    if (ecn < 0.0 || ecn > 1.0) {
      throw std::invalid_argument("GridSpec: ECN fraction outside [0,1]");
    }
  }
  if (!(link_rate_bps > 0.0) || segment_bytes == 0 ||
      open_loop_flows == 0) {
    throw std::invalid_argument("GridSpec: bad link/segment/flows");
  }
  if (!(open_duration_s > open_warmup_s) || open_warmup_s < 0.0 ||
      !(closed_duration_s > closed_warmup_s) || closed_warmup_s < 0.0) {
    throw std::invalid_argument("GridSpec: bad duration/warmup");
  }
  if (!(target_delay_s > 0.0) || !(max_deviation_s > 0.0)) {
    throw std::invalid_argument("GridSpec: bad target band");
  }
  if (!(buffer_bdp_multiple > 0.0)) {
    throw std::invalid_argument("GridSpec: buffer multiple <= 0");
  }
}

std::size_t GridSpec::CellCount() const {
  return policies.size() * base_rtts_s.size() * loads.size() *
         ecn_fractions.size() * 2;
}

GridSpec GridSpec::Default() {
  GridSpec spec;
  spec.policies = {AqmPolicyKind::kAnalog, AqmPolicyKind::kPie,
                   AqmPolicyKind::kPi2, AqmPolicyKind::kCodel,
                   AqmPolicyKind::kRed};
  spec.base_rtts_s = {0.010, 0.040, 0.100};
  spec.loads = {{"0.9x", 0.9, 4}, {"1.4x", 1.4, 16}};
  spec.ecn_fractions = {0.0, 0.5, 1.0};
  return spec;
}

double GridReport::MeanAdherence(AqmPolicyKind policy,
                                 GridSimulator simulator,
                                 const std::string& load_label) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const GridCellResult& cell : cells) {
    if (cell.policy == policy && cell.simulator == simulator &&
        cell.load.label == load_label) {
      sum += cell.adherence;
      ++n;
    }
  }
  return n == 0 ? -1.0 : sum / static_cast<double>(n);
}

double GridReport::AdherenceMargin(GridSimulator simulator,
                                   const std::string& load_label) const {
  const double analog =
      MeanAdherence(AqmPolicyKind::kAnalog, simulator, load_label);
  if (analog < 0.0) return -1.0;
  double best_digital = -1.0;
  for (AqmPolicyKind kind : spec.policies) {
    if (!IsDigital(kind)) continue;
    best_digital = std::max(
        best_digital, MeanAdherence(kind, simulator, load_label));
  }
  if (best_digital < 0.0) return -1.0;
  return analog - best_digital;
}

double GridReport::MinAdherenceMargin(GridSimulator simulator) const {
  double worst = 1.0;
  bool any = false;
  for (const GridLoad& load : spec.loads) {
    const double margin = AdherenceMargin(simulator, load.label);
    if (margin <= -1.0) continue;
    worst = std::min(worst, margin);
    any = true;
  }
  return any ? worst : -1.0;
}

ExperimentGrid::ExperimentGrid(GridSpec spec) : spec_(std::move(spec)) {
  spec_.Validate();
}

std::uint64_t ExperimentGrid::BufferBytes(double rtt_s) const {
  const double bdp_bytes = spec_.link_rate_bps * rtt_s / 8.0;
  const double bytes = spec_.buffer_bdp_multiple * bdp_bytes;
  // Never provision below a handful of segments or the short-RTT cells
  // can't hold even one in-flight burst.
  const double floor_bytes = 8.0 * static_cast<double>(spec_.segment_bytes);
  return static_cast<std::uint64_t>(std::max(bytes, floor_bytes));
}

namespace {

CellPolicy MakePolicy(const GridSpec& spec, AqmPolicyKind kind,
                      double rtt_s, std::uint64_t seed) {
  CellPolicy out;
  switch (kind) {
    case AqmPolicyKind::kAnalog: {
      aqm::AnalogAqmConfig cfg;
      cfg.target_delay_s = spec.target_delay_s;
      cfg.max_deviation_s = spec.max_deviation_s;
      cfg.ecn_enabled = true;
      // Coarser conductance quantisation keeps per-cell construction
      // cheap across a 100+ cell grid; the AQM transfer function is
      // unchanged at this resolution (see the ablation benches).
      cfg.hardware.state_levels = 256;
      cfg.seed = seed;
      auto analog = std::make_unique<aqm::AnalogAqm>(cfg);
      out.analog = analog.get();
      out.policy = std::move(analog);
      return out;
    }
    case AqmPolicyKind::kPie: {
      aqm::PieConfig cfg;
      cfg.target_delay_s = spec.target_delay_s;
      cfg.drain_rate_bps = spec.link_rate_bps;
      HarnessSpec hs;
      // drop_prob, qdelay, qdelay_old, last_update, burst_allowance +
      // the queue-bytes read and the scale-table lookup operand.
      hs.state_bits = 512;
      hs.mark_threshold = 0.1;  // RFC 8033 Sec. 5.1 mark_ecnth
      auto harness = std::make_unique<DigitalHarness>(
          std::make_unique<aqm::Pie>(cfg, seed), hs);
      out.harness = harness.get();
      out.policy = std::move(harness);
      return out;
    }
    case AqmPolicyKind::kPi2: {
      aqm::Pi2Config cfg;
      cfg.target_delay_s = spec.target_delay_s;
      cfg.drain_rate_bps = spec.link_rate_bps;
      HarnessSpec hs;
      hs.state_bits = 384;  // p', qdelay pair, last_update + queue read
      hs.mark_threshold = -1.0;  // native L4S mark path
      auto harness = std::make_unique<DigitalHarness>(
          std::make_unique<aqm::Pi2>(cfg, seed), hs);
      out.harness = harness.get();
      out.policy = std::move(harness);
      return out;
    }
    case AqmPolicyKind::kCodel: {
      aqm::CodelConfig cfg;
      cfg.target_s = spec.target_delay_s;
      // RFC 8289: interval should cover the worst-case expected RTT.
      cfg.interval_s = std::max(0.100, rtt_s);
      HarnessSpec hs;
      hs.state_bits = 320;  // first_above, drop_next, counts, state
      hs.charge_enqueue = false;
      hs.charge_dequeue = true;  // CoDel's only decision point
      auto harness = std::make_unique<DigitalHarness>(
          std::make_unique<aqm::Codel>(cfg), hs);
      out.harness = harness.get();
      out.policy = std::move(harness);
      return out;
    }
    case AqmPolicyKind::kRed:
    case AqmPolicyKind::kWred: {
      // Place the thresholds around the queue length that corresponds to
      // the grid's delay target at line rate (Little's law), so RED aims
      // at the same operating point as everyone else.
      const double target_pkts =
          spec.target_delay_s * spec.link_rate_bps /
          (8.0 * static_cast<double>(spec.segment_bytes));
      aqm::RedConfig low;
      low.min_threshold_pkts = std::max(1.0, 0.5 * target_pkts);
      low.max_threshold_pkts = std::max(2.0, 1.5 * target_pkts);
      low.max_p = 0.1;
      HarnessSpec hs;
      hs.state_bits = kind == AqmPolicyKind::kRed ? 256 : 384;
      hs.mark_threshold = 1.0;  // RFC 3168: mark every early drop
      std::unique_ptr<aqm::AqmPolicy> inner;
      if (kind == AqmPolicyKind::kRed) {
        inner = std::make_unique<aqm::Red>(low, seed);
      } else {
        aqm::RedConfig high = low;  // relieved profile for priority >= 4
        high.min_threshold_pkts = low.max_threshold_pkts;
        high.max_threshold_pkts = 2.0 * low.max_threshold_pkts;
        high.max_p = 0.5 * low.max_p;
        inner = std::make_unique<aqm::Wred>(high, low, seed);
      }
      auto harness =
          std::make_unique<DigitalHarness>(std::move(inner), hs);
      out.harness = harness.get();
      out.policy = std::move(harness);
      return out;
    }
    case AqmPolicyKind::kTailDrop: {
      HarnessSpec hs;
      hs.state_bits = 64;  // the occupancy compare
      auto harness = std::make_unique<DigitalHarness>(
          std::make_unique<aqm::TailDropOnly>(), hs);
      out.harness = harness.get();
      out.policy = std::move(harness);
      return out;
    }
  }
  throw std::invalid_argument("MakePolicy: unknown policy kind");
}

void FillEnergy(const CellPolicy& cell_policy, GridCellResult& cell) {
  if (cell_policy.analog != nullptr) {
    const aqm::AnalogAqm& analog = *cell_policy.analog;
    cell.decisions =
        analog.ledger().Of(energy::category::kPcamSearch).operations;
    if (cell.decisions > 0) {
      cell.energy_nj_per_decision =
          analog.ConsumedEnergyJ() /
          static_cast<double>(cell.decisions) * 1e9;
    }
  } else if (cell_policy.harness != nullptr) {
    cell.decisions = cell_policy.harness->decisions();
    cell.energy_nj_per_decision =
        cell_policy.harness->EnergyPerDecisionJ() * 1e9;
  }
}

void FillSojourns(const std::vector<double>& post_warmup,
                  GridCellResult& cell) {
  if (post_warmup.empty()) return;
  cell.mean_sojourn_s = Mean(post_warmup);
  cell.p50_sojourn_s = Percentile(post_warmup, 0.50);
  cell.p99_sojourn_s = Percentile(post_warmup, 0.99);
}

}  // namespace

GridCellResult ExperimentGrid::RunOpenLoop(AqmPolicyKind policy_kind,
                                           double rtt_s,
                                           const GridLoad& load,
                                           double ecn_fraction,
                                           std::uint64_t cell_seed) const {
  CellPolicy cell_policy =
      MakePolicy(spec_, policy_kind, rtt_s, Mix(cell_seed));

  net::PoissonGenerator::Config gc;
  gc.rate_pps = load.offered_fraction * spec_.link_rate_bps /
                (8.0 * static_cast<double>(spec_.segment_bytes));
  gc.flows = spec_.open_loop_flows;
  gc.ecn_capable_fraction = ecn_fraction;
  net::PoissonGenerator gen(
      gc, std::make_unique<net::FixedSize>(spec_.segment_bytes),
      cell_seed);

  QueueSimConfig qc;
  qc.duration_s = spec_.open_duration_s;
  qc.warmup_s = spec_.open_warmup_s;
  qc.link_rate_bps = spec_.link_rate_bps;
  qc.queue.max_bytes = BufferBytes(rtt_s);

  QueueSimulator simulator(qc, gen, *cell_policy.policy);
  const SimReport report = simulator.Run();

  GridCellResult cell;
  cell.policy = policy_kind;
  cell.simulator = GridSimulator::kOpenLoop;
  cell.base_rtt_s = rtt_s;
  cell.load = load;
  cell.ecn_fraction = ecn_fraction;

  cell.adherence = report.DelayFractionWithin(
      spec_.target_delay_s - spec_.max_deviation_s,
      spec_.target_delay_s + spec_.max_deviation_s);
  FillSojourns(report.delay.ValuesFrom(spec_.open_warmup_s), cell);
  cell.drop_rate = report.DropRate();
  cell.offered_packets = report.offered_packets;
  cell.delivered_packets = report.delivered_packets;
  cell.dropped_packets =
      report.queue_stats.dropped_full + report.queue_stats.dropped_aqm;
  cell.marked_packets = report.ecn_marked_packets;
  if (report.offered_packets > 0) {
    cell.mark_rate = static_cast<double>(report.ecn_marked_packets) /
                     static_cast<double>(report.offered_packets);
  }
  cell.fairness = report.FlowFairnessIndex();
  cell.utilization =
      std::min(1.0, report.ThroughputBps() / spec_.link_rate_bps);
  FillEnergy(cell_policy, cell);
  return cell;
}

GridCellResult ExperimentGrid::RunClosedLoop(
    AqmPolicyKind policy_kind, double rtt_s, const GridLoad& load,
    double ecn_fraction, std::uint64_t cell_seed) const {
  CellPolicy cell_policy =
      MakePolicy(spec_, policy_kind, rtt_s, Mix(cell_seed));

  ClosedLoopConfig cc;
  cc.sources = load.sources;
  cc.base_rtt_s = rtt_s;
  cc.segment_bytes = spec_.segment_bytes;
  cc.ecn_fraction = ecn_fraction;
  cc.duration_s = spec_.closed_duration_s;
  cc.warmup_s = spec_.closed_warmup_s;
  cc.link_rate_bps = spec_.link_rate_bps;
  cc.queue.max_bytes = BufferBytes(rtt_s);
  cc.seed = cell_seed;

  ClosedLoopSimulator simulator(cc, *cell_policy.policy);
  const ClosedLoopReport report = simulator.Run();

  GridCellResult cell;
  cell.policy = policy_kind;
  cell.simulator = GridSimulator::kClosedLoop;
  cell.base_rtt_s = rtt_s;
  cell.load = load;
  cell.ecn_fraction = ecn_fraction;

  const std::vector<double> post_warmup =
      report.delay.ValuesFrom(spec_.closed_warmup_s);
  if (!post_warmup.empty()) {
    cell.adherence = FractionWithin(
        post_warmup, spec_.target_delay_s - spec_.max_deviation_s,
        spec_.target_delay_s + spec_.max_deviation_s);
  }
  FillSojourns(post_warmup, cell);
  cell.offered_packets = report.offered_packets;
  cell.delivered_packets = report.delivered_packets;
  cell.dropped_packets = report.dropped_packets;
  cell.marked_packets = report.marked_packets;
  if (report.offered_packets > 0) {
    const auto offered = static_cast<double>(report.offered_packets);
    cell.drop_rate =
        static_cast<double>(report.dropped_packets) / offered;
    cell.mark_rate =
        static_cast<double>(report.marked_packets) / offered;
  }
  cell.fairness = report.FairnessIndex();
  cell.utilization =
      report.LinkUtilization(spec_.link_rate_bps, spec_.segment_bytes);
  FillEnergy(cell_policy, cell);
  return cell;
}

GridReport ExperimentGrid::Run() {
  GridReport report;
  report.spec = spec_;
  report.cells.reserve(spec_.CellCount());
  for (std::size_t p = 0; p < spec_.policies.size(); ++p) {
    for (std::size_t r = 0; r < spec_.base_rtts_s.size(); ++r) {
      for (std::size_t l = 0; l < spec_.loads.size(); ++l) {
        for (std::size_t e = 0; e < spec_.ecn_fractions.size(); ++e) {
          const AqmPolicyKind kind = spec_.policies[p];
          const double rtt = spec_.base_rtts_s[r];
          const GridLoad& load = spec_.loads[l];
          const double ecn = spec_.ecn_fractions[e];
          // The policy-kind index would reshuffle seeds if the policy
          // list were reordered; hash the stable enum value instead.
          const auto kind_id = static_cast<std::uint64_t>(kind);
          report.cells.push_back(RunOpenLoop(
              kind, rtt, load, ecn,
              CellSeed(spec_.seed, kind_id, r, l, e, 0)));
          if (callback_) callback_(report.cells.back());
          report.cells.push_back(RunClosedLoop(
              kind, rtt, load, ecn,
              CellSeed(spec_.seed, kind_id, r, l, e, 1)));
          if (callback_) callback_(report.cells.back());
        }
      }
    }
  }
  return report;
}

}  // namespace analognf::sim
