#include "analognf/common/timeseries.hpp"

#include <stdexcept>

namespace analognf {

void TimeSeries::Append(double time, double value) {
  if (!points_.empty() && time < points_.back().time) {
    throw std::invalid_argument("TimeSeries::Append: time went backwards");
  }
  points_.push_back({time, value});
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const Point& p : points_) out.push_back(p.value);
  return out;
}

std::vector<double> TimeSeries::ValuesFrom(double from) const {
  std::vector<double> out;
  for (const Point& p : points_) {
    if (p.time >= from) out.push_back(p.value);
  }
  return out;
}

TimeSeries TimeSeries::Downsample(std::size_t max_points) const {
  if (max_points < 2) {
    throw std::invalid_argument("Downsample requires max_points >= 2");
  }
  if (points_.size() <= max_points) return *this;
  TimeSeries out(name_);
  const double t0 = points_.front().time;
  const double t1 = points_.back().time;
  const double width = (t1 - t0) / static_cast<double>(max_points);
  if (width <= 0.0) {
    // Degenerate: all samples share one timestamp; average them.
    double sum = 0.0;
    for (const Point& p : points_) sum += p.value;
    out.Append(t0, sum / static_cast<double>(points_.size()));
    return out;
  }
  std::size_t bucket = 0;
  double sum = 0.0;
  std::size_t count = 0;
  for (const Point& p : points_) {
    auto b = static_cast<std::size_t>((p.time - t0) / width);
    if (b >= max_points) b = max_points - 1;
    if (b != bucket && count > 0) {
      out.Append(t0 + (static_cast<double>(bucket) + 0.5) * width,
                 sum / static_cast<double>(count));
      sum = 0.0;
      count = 0;
    }
    bucket = b;
    sum += p.value;
    ++count;
  }
  if (count > 0) {
    out.Append(t0 + (static_cast<double>(bucket) + 0.5) * width,
               sum / static_cast<double>(count));
  }
  return out;
}

}  // namespace analognf
