// Lock-free single-producer / single-consumer ring.
//
// The ingress layer (src/traffic) moves batches from generator threads
// into run-to-completion port workers the way a DPDK rx ring moves
// mbufs: one producer, one consumer, no locks, no allocation after
// construction. The implementation is the classic bounded ring with
// cache-line-padded head/tail counters plus *cached* counterparts: the
// producer re-reads the consumer's head only when its cached copy says
// the ring looks full (and vice versa), so in steady state each side
// runs entirely out of its own cache line.
//
// Memory ordering: the producer publishes slots with a release store of
// tail_; the consumer acquires tail_ before reading slots (and
// symmetrically for head_ on the reclaim side). Exactly one thread may
// call the producer API (TryPush/PushBatch) and one the consumer API
// (TryPop/PopBatch) at a time — that is the contract TSan checks in
// SpscRingTest.TwoThreadHandoff.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace analognf {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2). The ring
  // holds `capacity` elements: the head/tail counters are free-running
  // uint64s, so no slot is sacrificed to distinguish full from empty.
  explicit SpscRing(std::size_t capacity)
      : capacity_(RoundUpPow2(capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  // ------------------------------------------------------------ producer
  // Moves `item` into the ring; false if full (item is left untouched).
  bool TryPush(T& item) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool TryPush(T&& item) { return TryPush(item); }

  // Moves up to `count` items from `items` into the ring; returns how
  // many were consumed (a prefix of `items`). One release store
  // publishes the whole batch.
  std::size_t PushBatch(T* items, std::size_t count) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t free = capacity_ - (tail - head_cache_);
    if (free < count) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - head_cache_);
    }
    const std::size_t n = count < free ? count : static_cast<std::size_t>(free);
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
    }
    if (n != 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  // ------------------------------------------------------------ consumer
  // Moves the oldest item out into `out`; false if empty.
  bool TryPop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Moves up to `max` items into `out[0..)`; returns how many. One
  // release store retires the whole batch.
  std::size_t PopBatch(T* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = tail_cache_ - head;
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
    }
    const std::size_t n = max < avail ? max : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    if (n != 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  // ------------------------------------------------------------ observers
  // Snapshot views; exact only when the opposite side is quiescent
  // (which is how the drain logic uses them).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  std::size_t Size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

 private:
  static std::size_t RoundUpPow2(std::size_t v) {
    if (v < 2) v = 2;
    std::size_t p = 2;
    while (p < v) {
      if (p > (static_cast<std::size_t>(1) << 62)) {
        throw std::invalid_argument("SpscRing: capacity too large");
      }
      p <<= 1;
    }
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> slots_;

  // Producer-owned line: tail plus the producer's cached copy of head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  // Consumer-owned line: head plus the consumer's cached copy of tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
};

}  // namespace analognf
