// Fixed-capacity open-addressing flow table, structure-of-arrays.
//
// The per-flow state tables of the cognitive stages (FlowTracker today)
// used to live in std::unordered_map: one heap node per flow, a pointer
// chase per packet, and unbounded growth. This container replaces that
// with the layout a data-plane flow table actually wants:
//
//   * power-of-two bucket array, bucket = high bits of the Fibonacci
//     hash of the key (simd::FlowHash), so low-entropy keys spread;
//   * SoA lanes — one byte of fingerprint per slot scanned first, so a
//     probe touches 16 bytes of fingerprint cache before it ever loads
//     a key or value;
//   * bounded linear probe window (kProbeWindow slots, wrapping) instead
//     of tombstones or rehashing: the table never allocates after
//     construction;
//   * incremental aging — every touch stamps the slot with a
//     monotonically increasing epoch, and when a window is full the
//     stalest slot in it is evicted (the flow least recently seen among
//     the colliders). No global sweep ever runs.
//
// A fingerprint byte is 0 for an empty slot, else 0x80 | (7 low hash
// bits): the high bit doubles as the occupied marker, and a fingerprint
// mismatch rejects a slot without loading its 8-byte key. Distinct keys
// in the same window may alias on all 7 bits — the key lane is always
// compared before a hit is declared (test_flow_table pins this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analognf/common/simd.hpp"

namespace analognf::common {

template <typename Value>
class FlowTable {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;
  static constexpr std::size_t kProbeWindow = 16;

  // `capacity` is rounded up to a power of two, minimum kProbeWindow.
  explicit FlowTable(std::size_t capacity = kDefaultCapacity) {
    std::size_t cap = kProbeWindow;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    shift_ = 64;
    for (std::size_t c = cap; c > 1; c >>= 1) --shift_;
    fingerprints_.assign(cap, 0);
    keys_.assign(cap, 0);
    epochs_.assign(cap, 0);
    values_.resize(cap);
  }

  std::size_t capacity() const { return mask_ + 1; }
  std::size_t size() const { return size_; }
  std::uint64_t evictions() const { return evictions_; }

  static std::uint64_t HashOf(std::uint64_t key) {
    return simd::FlowHash(key);
  }

  // Looks up `key` (with its precomputed HashOf hash), inserting a
  // default-constructed value if absent. When the probe window is full,
  // the least-recently-touched slot in it is evicted and reused. The
  // returned pointer is valid until the next FindOrInsert. Every call
  // (hit or insert) freshens the slot's age stamp.
  Value* FindOrInsert(std::uint64_t key, std::uint64_t hash) {
    const std::uint8_t fp = FingerprintOf(hash);
    const std::size_t bucket = hash >> shift_;
    std::size_t empty_slot = kNone;
    std::size_t stale_slot = 0;
    std::uint64_t stale_epoch = ~std::uint64_t{0};
    for (std::size_t p = 0; p < kProbeWindow; ++p) {
      const std::size_t slot = (bucket + p) & mask_;
      const std::uint8_t f = fingerprints_[slot];
      if (f == fp && keys_[slot] == key) {
        epochs_[slot] = ++epoch_;
        return &values_[slot];
      }
      if (f == 0) {
        if (empty_slot == kNone) empty_slot = slot;
      } else if (epochs_[slot] < stale_epoch) {
        stale_epoch = epochs_[slot];
        stale_slot = slot;
      }
    }
    std::size_t slot = empty_slot;
    if (slot == kNone) {
      slot = stale_slot;  // window full: age out the stalest collider
      ++evictions_;
      --size_;
    }
    fingerprints_[slot] = fp;
    keys_[slot] = key;
    epochs_[slot] = ++epoch_;
    values_[slot] = Value{};
    ++size_;
    return &values_[slot];
  }

  // Read-only lookup; nullptr when absent. Does not freshen the age.
  const Value* Find(std::uint64_t key, std::uint64_t hash) const {
    const std::uint8_t fp = FingerprintOf(hash);
    const std::size_t bucket = hash >> shift_;
    for (std::size_t p = 0; p < kProbeWindow; ++p) {
      const std::size_t slot = (bucket + p) & mask_;
      if (fingerprints_[slot] == fp && keys_[slot] == key) {
        return &values_[slot];
      }
    }
    return nullptr;
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};

  static std::uint8_t FingerprintOf(std::uint64_t hash) {
    return static_cast<std::uint8_t>(0x80u | (hash & 0x7fu));
  }

  std::size_t mask_ = 0;
  unsigned shift_ = 0;  // bucket = hash >> shift_ (top log2(cap) bits)
  std::size_t size_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t evictions_ = 0;
  std::vector<std::uint8_t> fingerprints_;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> epochs_;
  std::vector<Value> values_;
};

}  // namespace analognf::common
