// RCU-style single-publisher snapshot cell.
//
// The control plane builds a fully-compiled, immutable snapshot object
// off the hot path and publishes it by swapping one shared_ptr;
// data-plane readers acquire the current snapshot at batch granularity
// and keep it alive for as long as they use it. Readers therefore always
// see either the old or the new fully-compiled snapshot — never a
// mid-recompile state — and old snapshots are reclaimed by shared_ptr
// refcounting once the last in-flight batch drops them (no grace-period
// machinery needed).
//
// The pointer itself is guarded by a mutex held only for the pointer
// copy (a handful of ns, once per batch — the compile work always
// happens outside it). A mutex rather than std::atomic<shared_ptr>:
// libstdc++'s _Sp_atomic protects its pointer with a lock bit whose
// reader-side unlock is relaxed, which is a formal data race under the
// C++ memory model — ThreadSanitizer rightly flags it — while the
// mutex gives the same batch-granularity cost with clean semantics.
//
// Contract: one publisher at a time (callers serialize Publish, e.g. the
// single controller thread); any number of concurrent Acquire callers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace analognf {

template <typename T>
class SnapshotCell {
 public:
  SnapshotCell() = default;
  explicit SnapshotCell(std::shared_ptr<const T> initial)
      : ptr_(std::move(initial)) {}

  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  // The currently-published snapshot (may be null if never published).
  // Safe from any thread; the lock covers only the pointer copy.
  std::shared_ptr<const T> Acquire() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ptr_;
  }

  // Swaps in a new snapshot and bumps the epoch. Single-publisher:
  // concurrent Publish calls must be serialized by the caller. Returns
  // the new epoch (the first Publish returns 1; a default-initial or
  // constructor-seeded snapshot is epoch 0).
  std::uint64_t Publish(std::shared_ptr<const T> next) {
    // Epoch is advanced before the pointer lands, so a reader that reads
    // epoch e0 and then acquires holds version e0-1 or newer — and a
    // reader that saw snapshot S_n can never observe an epoch < n
    // afterwards.
    const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::lock_guard<std::mutex> lock(mutex_);
    ptr_ = std::move(next);
    return e;
  }

  // Number of Publish calls so far. A reader bracketing an acquisition
  // with two epoch() reads (e0, e1) knows the snapshot it holds is one
  // of the versions in [e0 - 1, e1].
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;  // guards ptr_; never held across real work
  std::shared_ptr<const T> ptr_{};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace analognf
