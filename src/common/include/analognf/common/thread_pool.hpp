// A small reusable worker pool for data-parallel loops.
//
// The pCAM search engine shards row evaluation across cores for large
// tables (pcam_search_engine.hpp); simulations and benches may reuse the
// same pool. The pool is deliberately minimal: one blocking ParallelFor
// at a time, no futures, no task graph. The calling thread participates
// in the loop, so a pool with zero workers degrades to a plain `for` —
// which is also the single-core fallback.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace analognf {

class ThreadPool {
 public:
  // Spawns `workers` background threads (0 is valid: all work then runs
  // inline on the calling thread).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(0) .. fn(tasks - 1), concurrently across the workers and the
  // calling thread, and blocks until all calls have returned. Tasks must
  // not submit further work to the same pool. Concurrent ParallelFor
  // calls from different threads are serialized.
  void ParallelFor(std::size_t tasks,
                   const std::function<void(std::size_t)>& fn);

  // Process-wide pool sized to the machine (hardware_concurrency - 1
  // workers, so loops use every core including the caller's).
  static ThreadPool& Shared();

  // Stable slot index of the calling thread: 0 for any unregistered
  // thread that is not a pool worker (including the ParallelFor caller),
  // 1 + i for a pool's worker i, and a process-unique slot above the
  // shared pool's workers for threads that called RegisterExternalSlot.
  // Telemetry uses this to pick a contention-free counter cell; workers
  // of distinct pools share slot numbers, which only costs them a shared
  // cell, never correctness.
  static std::size_t CurrentSlot() { return current_slot_; }

  // Assigns the calling thread a slot that no shared-pool worker and no
  // other registered thread uses, so its sharded telemetry writes never
  // contend (or merge) with another thread's. Long-lived non-pool
  // threads that write metrics on the hot path (e.g. per-port runtime
  // workers) must call this once at startup; without it every external
  // thread lands on slot 0 and two such writers silently share one
  // counter cell. Idempotent: repeat calls keep the first assignment.
  // Returns the slot.
  static std::size_t RegisterExternalSlot();

  // Upper bound (exclusive) on slot indices handed out so far: shared
  // pool workers + slot 0 + registered external threads. Sizing a
  // sharded counter to at least this (rounded up to a power of two)
  // guarantees registered threads never alias.
  static std::size_t SlotUpperBound();

 private:
  void WorkerLoop();
  void RunTasks();

  inline static thread_local std::size_t current_slot_ = 0;
  inline static std::atomic<std::size_t> external_slots_{0};

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  // one job at a time
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t total_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t done_ = 0;
  bool stop_ = false;
};

}  // namespace analognf
