// Physical units and constants used across the analog network-function stack.
//
// All physical quantities in this codebase are `double`s in SI base units
// (volts, amperes, ohms, seconds, joules, watts, bytes). Named multipliers
// below make call sites read like the paper's figures ("20.0 * kMilli"
// seconds, "0.16 * kNano" joules) without introducing a heavyweight unit
// system into hot paths.
#pragma once

namespace analognf {

// ---------------------------------------------------------------- prefixes
inline constexpr double kTera = 1e12;
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;
inline constexpr double kAtto = 1e-18;

// ------------------------------------------------------ physical constants
// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
// Room temperature [K]; all device models are evaluated at 300 K, matching
// the lab conditions of the Nb:SrTiO3 measurements the paper builds on.
inline constexpr double kRoomTemperatureK = 300.0;
// Thermal voltage kT/q at 300 K [V].
inline constexpr double kThermalVoltageV =
    kBoltzmann * kRoomTemperatureK / kElementaryCharge;

// ------------------------------------------------------------- conversions
// Convert seconds to milliseconds (presentation only).
constexpr double ToMillis(double seconds) { return seconds / kMilli; }
// Convert joules to femtojoules (presentation only).
constexpr double ToFemtojoules(double joules) { return joules / kFemto; }
// Convert joules to nanojoules (presentation only).
constexpr double ToNanojoules(double joules) { return joules / kNano; }
// Convert a bit rate in bits/s to bytes/s.
constexpr double BitsToBytesPerSecond(double bits_per_s) {
  return bits_per_s / 8.0;
}

}  // namespace analognf
