// Tabular report formatting for the benchmark harness.
//
// Every bench binary prints the paper's table/figure as `[REPRO]`-prefixed
// rows before running its google-benchmark timings; this formatter keeps
// those reports consistent and also emits CSV for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace analognf {

// A simple column-aligned text table with optional CSV output.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats each cell with %g-style precision.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values, int precision = 4);

  std::size_t rows() const { return rows_.size(); }

  // Column-aligned rendering, each line prefixed with `prefix`
  // (e.g. "[REPRO] ").
  void Print(std::ostream& os, const std::string& prefix = "") const;

  // RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given significant digits (e.g. "0.01", "1.6e-17").
std::string FormatSig(double value, int significant_digits = 4);

// Formats an energy in joules with an adaptive SI suffix (aJ/fJ/pJ/nJ/uJ/J),
// e.g. 1.6e-17 -> "0.016 fJ". Presentation helper for the energy benches.
std::string FormatEnergy(double joules, int significant_digits = 3);

// Formats a duration in seconds with an adaptive SI suffix (ns/us/ms/s).
std::string FormatDuration(double seconds, int significant_digits = 3);

}  // namespace analognf
