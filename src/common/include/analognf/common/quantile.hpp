// Streaming quantile estimation (P-square algorithm, Jain & Chlamtac
// 1985): O(1) memory p-quantile tracking for long-running simulations
// where storing every delay sample is wasteful.
#pragma once

#include <array>
#include <cstdint>

namespace analognf {

// Tracks a single quantile q in (0, 1) over a stream of samples.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void Add(double x);

  // Current estimate. Exact while fewer than 5 samples have been seen
  // (falls back to the sorted buffer), P-square interpolation after.
  double Value() const;
  std::uint64_t count() const { return count_; }
  double quantile() const { return q_; }
  void Reset();

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  std::uint64_t count_ = 0;
  // P-square state: 5 markers (heights, positions, desired positions).
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> desired_increment_{};
};

}  // namespace analognf
