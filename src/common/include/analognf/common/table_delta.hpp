// Shared delta-commit contract for the table engines (TCAM, LPM, pCAM).
//
// Every table follows the same stage-then-Commit() discipline
// (tcam.hpp, pcam_array.hpp): mutations stage against the authoritative
// row store and an explicit Commit() publishes an immutable snapshot
// RCU-style through SnapshotCell<T> (snapshot.hpp). Historically every
// Commit() recompiled the world; at internet scale (1M LPM routes, 256k
// TCAM rules) that turns a single-rule change into a multi-millisecond
// rebuild. This header is the contract that makes commits incremental:
//
//   * TableDelta — the staged-mutation log. Mutators note which rows
//     they touched (insert / erase / patch) between commits; Commit()
//     reads the log to decide whether the staged set is small enough to
//     patch onto a copy-on-write clone of the published snapshot
//     instead of recompiling. Whole-table events (aging, compaction,
//     tier changes) are "structural" and always force a full recompile.
//     The log deduplicates: applying patches per *final* row state, in
//     first-touch order, reproduces the full recompile bit-for-bit
//     without replaying intermediate states.
//   * DeltaCommitPolicy — the churn-density heuristic. A delta commit
//     costs O(touched rows + overlay); a full recompile costs O(table).
//     The policy takes the delta path only when the staged set plus any
//     overlay the engine has already accumulated (e.g. the TCAM's
//     appended tail) stays below a fraction of the committed row count,
//     so repeated single-rule commits are microseconds each and heavy
//     churn amortizes into one clean rebuild.
//   * TableCommitStats — per-table control-plane accounting (commit
//     count, delta vs full split, rows patched, last commit latency),
//     surfaced through the `table.commit_ns` / `table.delta_rows` /
//     `table.full_recompiles` telemetry meters (telemetry/metrics.hpp).
//
// The log lives in the table (single mutator thread, never read by the
// data plane); published snapshots stay immutable. See
// docs/ARCHITECTURE.md, "Incremental commit".
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace analognf {

// Kind of a staged mutation, for accounting and tests.
enum class TableDeltaOp : std::uint8_t {
  kInsert,  // a new row at a (possibly reused) stable index
  kErase,   // an existing row tombstoned
  kPatch,   // an existing row's payload reprogrammed in place
};

// Staged-mutation log between two commits. Single-writer (the table's
// mutator thread); cleared by Commit(). Dedup is a generation-stamped
// vector indexed by row — Clear() must be O(1), not O(capacity): row
// indices are dense and an unordered_set's clear() walks its whole
// bucket array, which after a million-row initial build costs more per
// commit than the delta patch itself.
class TableDelta {
 public:
  // Notes one staged mutation on row `index`.
  void Note(TableDeltaOp op, std::size_t index) {
    ++op_count_;
    if (op == TableDeltaOp::kInsert) ++inserts_;
    if (op == TableDeltaOp::kErase) ++erases_;
    if (op == TableDeltaOp::kPatch) ++patches_;
    if (index >= stamp_.size()) stamp_.resize(index + 1, 0);
    if (stamp_[index] != gen_) {
      stamp_[index] = gen_;
      touched_.push_back(index);
    }
  }
  // Notes a whole-table event (aging, compaction, a tier change): the
  // next commit must recompile from scratch regardless of density.
  void NoteStructural() { structural_ = true; }

  bool empty() const { return op_count_ == 0 && !structural_; }
  bool structural() const { return structural_; }
  // Total staged operations (a row touched twice counts twice).
  std::size_t op_count() const { return op_count_; }
  std::size_t inserts() const { return inserts_; }
  std::size_t erases() const { return erases_; }
  std::size_t patches() const { return patches_; }
  // Unique touched row indices in first-touch order. Applying each
  // index's *final* state (erase-if-present, then insert-if-live) in
  // this order reproduces the full recompile exactly: per-index end
  // state is all that survives a commit, and engines resolve winners by
  // explicit (priority, index) keys, never by patch order.
  const std::vector<std::size_t>& touched() const { return touched_; }

  void Clear() {
    touched_.clear();
    if (++gen_ == 0) {  // generation wrap: stale stamps must not collide
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      gen_ = 1;
    }
    op_count_ = inserts_ = erases_ = patches_ = 0;
    structural_ = false;
  }

 private:
  std::vector<std::size_t> touched_;
  std::vector<std::uint32_t> stamp_;  // stamp_[row] == gen_ <=> noted
  std::uint32_t gen_ = 1;
  std::size_t op_count_ = 0;
  std::size_t inserts_ = 0;
  std::size_t erases_ = 0;
  std::size_t patches_ = 0;
  bool structural_ = false;
};

// When is patching a cloned snapshot cheaper than recompiling it?
struct DeltaCommitPolicy {
  // Below this many committed rows a full recompile is already
  // microseconds; the delta machinery would only add bookkeeping.
  std::size_t min_rows = 256;
  // The staged set plus the engine's accumulated overlay must stay
  // below this fraction of the committed row count. 1/16 keeps the
  // TCAM's unsorted tail (scanned linearly per search) and erased-slot
  // bitmap a rounding error next to the compiled core.
  double max_delta_fraction = 1.0 / 16.0;
  // Absolute overlay cap, so a huge table cannot grow a tail whose
  // linear scan erodes the pruned tier's search budget.
  std::size_t max_delta_rows = 4096;

  // `overlay_rows`: rows the published snapshot already carries outside
  // its compiled core (appended tail + erased slots for the TCAM; 0 for
  // engines whose patches fold in exactly, like the flat LPM).
  bool UseDelta(std::size_t staged_rows, bool structural,
                std::size_t committed_rows, std::size_t overlay_rows) const {
    if (structural) return false;
    if (committed_rows < min_rows) return false;
    const std::size_t total = staged_rows + overlay_rows;
    if (total > max_delta_rows) return false;
    return static_cast<double>(total) <=
           max_delta_fraction * static_cast<double>(committed_rows);
  }

  // A policy that never takes the delta path (every commit recompiles).
  // Differential tests pin reference tables to this.
  static DeltaCommitPolicy Disabled() {
    DeltaCommitPolicy p;
    p.max_delta_rows = 0;
    return p;
  }
};

// Control-plane cost accounting, per table. Mutated only by Commit()
// (single controller thread); read by tests, benches and telemetry.
struct TableCommitStats {
  std::uint64_t commits = 0;           // Commit() calls that published
  std::uint64_t delta_commits = 0;     // took the patch path
  std::uint64_t full_recompiles = 0;   // rebuilt the snapshot from scratch
  std::uint64_t delta_rows = 0;        // rows patched across delta commits
  std::uint64_t last_commit_ns = 0;    // wall time of the latest commit
  bool last_was_delta = false;
};

}  // namespace analognf
