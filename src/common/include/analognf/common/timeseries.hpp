// Time-series container for simulation traces (Fig. 8 delay-vs-time plots
// and the bench reports that regenerate them).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace analognf {

// An append-only (time, value) trace. Times are expected to be
// non-decreasing; Append enforces this.
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  // Appends a sample. Throws std::invalid_argument if `time` precedes the
  // last appended time.
  void Append(double time, double value);

  // Pre-allocates storage for `capacity` samples. Simulations that know
  // their sample count up front (duration / sample interval) call this to
  // keep the Append hot path free of reallocation.
  void Reserve(std::size_t capacity) { points_.reserve(capacity); }

  const std::string& name() const { return name_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }
  const Point& operator[](std::size_t i) const { return points_[i]; }

  // All values, in time order.
  std::vector<double> Values() const;
  // Values with time >= from (inclusive). Used to drop warm-up transients
  // before computing delay-bound statistics.
  std::vector<double> ValuesFrom(double from) const;

  // Downsamples to at most `max_points` by bucketing on time and
  // averaging each bucket. Used by the bench reports to print plottable
  // series of bounded length. Returns *this unchanged if already small
  // enough. Requires max_points >= 2.
  TimeSeries Downsample(std::size_t max_points) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace analognf
