// Deterministic random number generation.
//
// Every stochastic component in the library (traffic generators, analog
// noise sources, device-to-device variation) draws from an explicitly
// seeded generator so that every experiment in EXPERIMENTS.md is exactly
// reproducible. We implement xoshiro256** (Blackman & Vigna) seeded via
// SplitMix64 rather than relying on std::mt19937 so that streams are
// cheap to fork per component and stable across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace analognf {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Also a fine stand-alone generator for hashing-style uses.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit PRNG with a 2^256-1 period.
// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  // Seeds the four state words from SplitMix64(seed).
  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return Next(); }
  result_type Next();

  // Equivalent to 2^128 calls to Next(); used to fork statistically
  // independent sub-streams for per-component generators.
  void Jump();

  // Convenience: a forked generator whose stream is independent of the
  // parent's subsequent output.
  Xoshiro256 Fork();

 private:
  std::array<std::uint64_t, 4> s_;
};

// Distribution helpers. Implemented directly (not via <random>
// distributions) so results are bit-identical across platforms.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : gen_(seed) {}
  explicit RandomStream(Xoshiro256 gen) : gen_(gen) {}

  // Uniform in [0, 1).
  double NextUniform();
  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextIndex(std::uint64_t n);
  // Exponential with the given rate (events per unit time). Requires
  // rate > 0. Used for Poisson inter-arrival times.
  double NextExponential(double rate);
  // Standard normal via Box-Muller (cached second variate).
  double NextNormal();
  // Normal with the given mean and standard deviation (sigma >= 0).
  double NextNormal(double mean, double sigma);
  // Poisson-distributed count with the given mean (lambda >= 0).
  // Knuth's method for small lambda, normal approximation above 64.
  std::uint64_t NextPoisson(double lambda);
  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);
  // Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed flow sizes).
  double NextPareto(double xm, double alpha);

  // Independent sub-stream for a child component.
  RandomStream Fork() { return RandomStream(gen_.Fork()); }

 private:
  Xoshiro256 gen_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace analognf
