// Streaming and batch statistics used by the simulator, the AQM control
// loop and the benchmark reports.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace analognf {

// Welford's online algorithm: numerically stable running mean/variance,
// plus min/max tracking. O(1) per sample, no storage.
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  // Mean of the samples seen so far (0 when empty).
  double mean() const { return mean_; }
  // Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  // Minimum/maximum seen (+/-inf when empty).
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  // +/-infinity when empty, as min()/max() promise; Add() overwrites on
  // the first sample.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

// Exponentially weighted moving average, the estimator RED-style AQMs and
// the cognitive controller use for queue statistics. `weight` in (0, 1]
// is the weight of the newest sample.
class Ewma {
 public:
  explicit Ewma(double weight);

  // Folds in a sample and returns the updated average. The first sample
  // initialises the average directly.
  double Update(double sample);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void Reset();

 private:
  double weight_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Linearly interpolated percentile of a batch (q in [0, 1]).
// Copies and sorts internally; intended for end-of-run reporting.
// Requires a non-empty input.
double Percentile(const std::vector<double>& samples, double q);

// Mean of a batch. Requires a non-empty input.
double Mean(const std::vector<double>& samples);

// Fraction of samples inside [lo, hi] (inclusive). Used for the Fig. 8
// "delays held within programmed latency bounds" metric. Requires a
// non-empty input.
double FractionWithin(const std::vector<double>& samples, double lo,
                      double hi);

}  // namespace analognf
