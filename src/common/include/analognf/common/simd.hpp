// Explicit SIMD kernels with portable scalar fallbacks.
//
// The hot loops of the match path (TCAM bank compares, pruning-bitmap
// intersections, pCAM piecewise-transfer sweeps) are written twice: once
// as plain scalar C++ (the reference — bit-exact with the historical
// auto-vectorized loops) and once with AVX2 intrinsics compiled via GCC
// function-target attributes, so no global -march flags are needed and
// the binary still runs on baseline x86-64. Dispatch happens once per
// process via __builtin_cpu_supports and is cached in a function-local
// static; the per-call cost is one predictable branch.
//
// Bit-identity contract: every AVX2 kernel performs the same IEEE-754
// operations in the same order as its scalar twin — multiplies and adds
// stay separate (the baseline build has no FMA contraction), and ternary
// selects become blendv on the identical compare, so results are
// bit-identical, not merely close. Differential tests in
// tests/test_tcam_engine.cpp and tests/test_core.cpp pin this down.
//
// Escape hatches:
//   * compile time: -DANALOGNF_FORCE_SCALAR (CMake option of the same
//     name) removes the AVX2 code entirely — the portable-path CI job.
//   * run time: environment variable ANALOGNF_FORCE_SCALAR set to
//     anything but "0" forces the scalar kernels on AVX2 hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(ANALOGNF_FORCE_SCALAR)
#define ANALOGNF_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace analognf::simd {

// ------------------------------------------------------------- dispatch

inline bool DetectAvx2() {
#ifdef ANALOGNF_SIMD_AVX2
  const char* force = std::getenv("ANALOGNF_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return false;
  }
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Cached once per process; every kernel branches on this.
inline bool UseAvx2() {
  static const bool on = DetectAvx2();
  return on;
}

// "avx2" or "scalar" — recorded in bench JSON so results are attributable.
inline const char* IsaName() { return UseAvx2() ? "avx2" : "scalar"; }

// ----------------------------------------------------- TCAM bank compare
// One TCAM bank is 64 priority-sorted slots; `mask`/`value` point at the
// bank's 64 contiguous per-slot words of ONE key lane (columns are padded
// to whole banks by the compiler). Returns the 64-bit word whose bit s is
// set iff (key & mask[s]) == value[s].

inline std::uint64_t BankMatchWordScalar(std::uint64_t key,
                                         const std::uint64_t* mask,
                                         const std::uint64_t* value) {
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < 64; ++s) {
    bits |= static_cast<std::uint64_t>((key & mask[s]) == value[s]) << s;
  }
  return bits;
}

#ifdef ANALOGNF_SIMD_AVX2
__attribute__((target("avx2"))) inline std::uint64_t BankMatchWordAvx2(
    std::uint64_t key, const std::uint64_t* mask, const std::uint64_t* value) {
  const __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
  std::uint64_t bits = 0;
  for (int g = 0; g < 16; ++g) {
    const __m256i m = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(mask + 4 * g));
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(value + 4 * g));
    const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(k, m), v);
    const auto mm =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    bits |= static_cast<std::uint64_t>(mm) << (4 * g);
  }
  return bits;
}
#endif

inline std::uint64_t BankMatchWord(std::uint64_t key,
                                   const std::uint64_t* mask,
                                   const std::uint64_t* value) {
#ifdef ANALOGNF_SIMD_AVX2
  if (UseAvx2()) return BankMatchWordAvx2(key, mask, value);
#endif
  return BankMatchWordScalar(key, mask, value);
}

// ------------------------------------------------ bitmap intersection
// ANDs `n` pruning-bitmap rows over the 4 consecutive 64-bit words
// starting at word index w0 (rows are padded to a multiple of 4 words).
// Writes the intersection into out[0..3]; returns true iff any word is
// nonzero (the early-exit test of the pruned search).

inline bool IntersectWords4Scalar(const std::uint64_t* const* rows,
                                  std::size_t n, std::size_t w0,
                                  std::uint64_t out[4]) {
  std::uint64_t any = 0;
  for (std::size_t j = 0; j < 4; ++j) {
    std::uint64_t w = rows[0][w0 + j];
    for (std::size_t i = 1; i < n; ++i) w &= rows[i][w0 + j];
    out[j] = w;
    any |= w;
  }
  return any != 0;
}

#ifdef ANALOGNF_SIMD_AVX2
__attribute__((target("avx2"))) inline bool IntersectWords4Avx2(
    const std::uint64_t* const* rows, std::size_t n, std::size_t w0,
    std::uint64_t out[4]) {
  __m256i acc =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[0] + w0));
  for (std::size_t i = 1; i < n; ++i) {
    acc = _mm256_and_si256(
        acc, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(rows[i] + w0)));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), acc);
  return _mm256_testz_si256(acc, acc) == 0;
}
#endif

inline bool IntersectWords4(const std::uint64_t* const* rows, std::size_t n,
                            std::size_t w0, std::uint64_t out[4]) {
#ifdef ANALOGNF_SIMD_AVX2
  if (UseAvx2()) return IntersectWords4Avx2(rows, n, w0, out);
#endif
  return IntersectWords4Scalar(rows, n, w0, out);
}

// ------------------------------------------- pCAM piecewise transfer
// The five-region piecewise-linear pCAM transfer (pcam_cell.hpp),
// evaluated over structure-of-arrays parameter columns. Two shapes:
//   * PcamColumnEval: one line voltage, many rows (stateless search) —
//     4 rows of conductance accumulation per AVX2 iteration.
//   * PcamCellEvalBatch: one row's parameters, many line voltages
//     (stateful batched search) — 4 queries per iteration.

struct PcamColumnSpan {
  const double* m1;
  const double* m2;
  const double* m3;
  const double* m4;
  const double* sa;
  const double* sb;
  const double* ia;
  const double* ib;
  const double* lo;  // pmin
  const double* hi;  // pmax
};

struct PcamCellParams {
  double m1, m2, m3, m4;
  double sa, sb, ia, ib;
  double lo, hi;
};

// deg[r] *= transfer(v; column params of row r) for r in [r0, r1).
inline void PcamColumnEvalScalar(const PcamColumnSpan& c, double v,
                                 double* deg, std::size_t r0, std::size_t r1) {
  for (std::size_t r = r0; r < r1; ++r) {
    const double rising = c.sa[r] * v + c.ia[r];
    const double falling = c.sb[r] * v + c.ib[r];
    double o = (v < c.m2[r]) ? rising : c.hi[r];
    o = (v > c.m3[r]) ? falling : o;
    o = (v <= c.m1[r] || v >= c.m4[r]) ? c.lo[r] : o;
    o = (o < c.lo[r]) ? c.lo[r] : o;  // std::max(o, lo)
    o = (c.hi[r] < o) ? c.hi[r] : o;  // std::min(o, hi)
    deg[r] *= o;
  }
}

#ifdef ANALOGNF_SIMD_AVX2
// Same selects as the scalar chain, as blendv on identical compares;
// mul and add stay separate (no FMA) to match the non-contracted
// baseline codegen bit-for-bit.
__attribute__((target("avx2"))) inline void PcamColumnEvalAvx2(
    const PcamColumnSpan& c, double v, double* deg, std::size_t r0,
    std::size_t r1) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t r = r0;
  for (; r + 4 <= r1; r += 4) {
    const __m256d m1 = _mm256_loadu_pd(c.m1 + r);
    const __m256d m2 = _mm256_loadu_pd(c.m2 + r);
    const __m256d m3 = _mm256_loadu_pd(c.m3 + r);
    const __m256d m4 = _mm256_loadu_pd(c.m4 + r);
    const __m256d lo = _mm256_loadu_pd(c.lo + r);
    const __m256d hi = _mm256_loadu_pd(c.hi + r);
    const __m256d rising = _mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(c.sa + r), vv), _mm256_loadu_pd(c.ia + r));
    const __m256d falling = _mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(c.sb + r), vv), _mm256_loadu_pd(c.ib + r));
    __m256d o = _mm256_blendv_pd(hi, rising, _mm256_cmp_pd(vv, m2, _CMP_LT_OQ));
    o = _mm256_blendv_pd(o, falling, _mm256_cmp_pd(vv, m3, _CMP_GT_OQ));
    const __m256d rail = _mm256_or_pd(_mm256_cmp_pd(vv, m1, _CMP_LE_OQ),
                                      _mm256_cmp_pd(vv, m4, _CMP_GE_OQ));
    o = _mm256_blendv_pd(o, lo, rail);
    o = _mm256_blendv_pd(o, lo, _mm256_cmp_pd(o, lo, _CMP_LT_OQ));
    o = _mm256_blendv_pd(o, hi, _mm256_cmp_pd(hi, o, _CMP_LT_OQ));
    _mm256_storeu_pd(deg + r, _mm256_mul_pd(_mm256_loadu_pd(deg + r), o));
  }
  PcamColumnEvalScalar(c, v, deg, r, r1);
}
#endif

inline void PcamColumnEval(const PcamColumnSpan& c, double v, double* deg,
                           std::size_t r0, std::size_t r1) {
#ifdef ANALOGNF_SIMD_AVX2
  if (UseAvx2()) {
    PcamColumnEvalAvx2(c, v, deg, r0, r1);
    return;
  }
#endif
  PcamColumnEvalScalar(c, v, deg, r0, r1);
}

// deg[q] *= transfer(lv[q]; p) for q in [0, count).
inline void PcamCellEvalBatchScalar(const PcamCellParams& p, const double* lv,
                                    double* deg, std::size_t count) {
  for (std::size_t q = 0; q < count; ++q) {
    const double v = lv[q];
    const double rising = p.sa * v + p.ia;
    const double falling = p.sb * v + p.ib;
    double o = (v < p.m2) ? rising : p.hi;
    o = (v > p.m3) ? falling : o;
    o = (v <= p.m1 || v >= p.m4) ? p.lo : o;
    o = (o < p.lo) ? p.lo : o;
    o = (p.hi < o) ? p.hi : o;
    deg[q] *= o;
  }
}

#ifdef ANALOGNF_SIMD_AVX2
__attribute__((target("avx2"))) inline void PcamCellEvalBatchAvx2(
    const PcamCellParams& p, const double* lv, double* deg,
    std::size_t count) {
  const __m256d m1 = _mm256_set1_pd(p.m1);
  const __m256d m2 = _mm256_set1_pd(p.m2);
  const __m256d m3 = _mm256_set1_pd(p.m3);
  const __m256d m4 = _mm256_set1_pd(p.m4);
  const __m256d sa = _mm256_set1_pd(p.sa);
  const __m256d sb = _mm256_set1_pd(p.sb);
  const __m256d ia = _mm256_set1_pd(p.ia);
  const __m256d ib = _mm256_set1_pd(p.ib);
  const __m256d lo = _mm256_set1_pd(p.lo);
  const __m256d hi = _mm256_set1_pd(p.hi);
  std::size_t q = 0;
  for (; q + 4 <= count; q += 4) {
    const __m256d vv = _mm256_loadu_pd(lv + q);
    const __m256d rising = _mm256_add_pd(_mm256_mul_pd(sa, vv), ia);
    const __m256d falling = _mm256_add_pd(_mm256_mul_pd(sb, vv), ib);
    __m256d o = _mm256_blendv_pd(hi, rising, _mm256_cmp_pd(vv, m2, _CMP_LT_OQ));
    o = _mm256_blendv_pd(o, falling, _mm256_cmp_pd(vv, m3, _CMP_GT_OQ));
    const __m256d rail = _mm256_or_pd(_mm256_cmp_pd(vv, m1, _CMP_LE_OQ),
                                      _mm256_cmp_pd(vv, m4, _CMP_GE_OQ));
    o = _mm256_blendv_pd(o, lo, rail);
    o = _mm256_blendv_pd(o, lo, _mm256_cmp_pd(o, lo, _CMP_LT_OQ));
    o = _mm256_blendv_pd(o, hi, _mm256_cmp_pd(hi, o, _CMP_LT_OQ));
    _mm256_storeu_pd(deg + q, _mm256_mul_pd(_mm256_loadu_pd(deg + q), o));
  }
  PcamCellEvalBatchScalar(p, lv + q, deg + q, count - q);
}
#endif

inline void PcamCellEvalBatch(const PcamCellParams& p, const double* lv,
                              double* deg, std::size_t count) {
#ifdef ANALOGNF_SIMD_AVX2
  if (UseAvx2()) {
    PcamCellEvalBatchAvx2(p, lv, deg, count);
    return;
  }
#endif
  PcamCellEvalBatchScalar(p, lv, deg, count);
}

// --------------------------------------------------- flow-table hashing
// Fibonacci multiplicative hash of raw flow keys: the flow table derives
// its bucket from the HIGH bits of key * phi64, so low-entropy keys
// (tests use literal flow hashes like 1 and 7) still spread across
// buckets. The batched form hashes a whole PacketBatch's flow-hash lane
// up front. Integer ops are exact, so AVX2 and scalar agree bit-for-bit
// by construction; the 64-bit lane product decomposes into 32x32
// partials because AVX2 has no 64x64 multiply.

inline constexpr std::uint64_t kFlowHashMul = 0x9e3779b97f4a7c15ULL;

inline std::uint64_t FlowHash(std::uint64_t key) { return key * kFlowHashMul; }

inline void FlowHashBatchScalar(const std::uint64_t* keys,
                                std::uint64_t* hashes, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) hashes[i] = keys[i] * kFlowHashMul;
}

#ifdef ANALOGNF_SIMD_AVX2
__attribute__((target("avx2"))) inline void FlowHashBatchAvx2(
    const std::uint64_t* keys, std::uint64_t* hashes, std::size_t count) {
  // key * C mod 2^64 = k_lo*c_lo + ((k_lo*c_hi + k_hi*c_lo) << 32)
  const __m256i c_lo =
      _mm256_set1_epi64x(static_cast<long long>(kFlowHashMul & 0xffffffffULL));
  const __m256i c_hi =
      _mm256_set1_epi64x(static_cast<long long>(kFlowHashMul >> 32));
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i k_hi = _mm256_srli_epi64(k, 32);
    const __m256i lolo = _mm256_mul_epu32(k, c_lo);
    const __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(k, c_hi), _mm256_mul_epu32(k_hi, c_lo));
    const __m256i h = _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), h);
  }
  FlowHashBatchScalar(keys + i, hashes + i, count - i);
}
#endif

inline void FlowHashBatch(const std::uint64_t* keys, std::uint64_t* hashes,
                          std::size_t count) {
#ifdef ANALOGNF_SIMD_AVX2
  if (UseAvx2()) {
    FlowHashBatchAvx2(keys, hashes, count);
    return;
  }
#endif
  FlowHashBatchScalar(keys, hashes, count);
}

}  // namespace analognf::simd
