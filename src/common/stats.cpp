#include "analognf/common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace analognf {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Ewma::Ewma(double weight) : weight_(weight) {
  if (!(weight > 0.0) || weight > 1.0) {
    throw std::invalid_argument("Ewma weight must be in (0, 1]");
  }
}

double Ewma::Update(double sample) {
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
  } else {
    value_ += weight_ * (sample - value_);
  }
  return value_;
}

void Ewma::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

double Percentile(const std::vector<double>& samples, double q) {
  if (samples.empty()) {
    throw std::invalid_argument("Percentile of an empty sample set");
  }
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("Mean of an empty sample set");
  }
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

double FractionWithin(const std::vector<double>& samples, double lo,
                      double hi) {
  if (samples.empty()) {
    throw std::invalid_argument("FractionWithin of an empty sample set");
  }
  const auto inside = std::count_if(
      samples.begin(), samples.end(),
      [lo, hi](double x) { return x >= lo && x <= hi; });
  return static_cast<double>(inside) / static_cast<double>(samples.size());
}

}  // namespace analognf
