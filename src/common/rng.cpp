#include "analognf/common/rng.hpp"

#include <cassert>
#include <cmath>

namespace analognf {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

std::uint64_t Xoshiro256::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Xoshiro256::Jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Xoshiro256 Xoshiro256::Fork() {
  // The child keeps the current 2^128-draw block; the parent jumps past
  // it. Repeated forks hand out consecutive non-overlapping blocks.
  Xoshiro256 child = *this;
  Jump();
  return child;
}

double RandomStream::NextUniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double RandomStream::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextUniform();
}

std::uint64_t RandomStream::NextIndex(std::uint64_t n) {
  assert(n > 0);
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = gen_();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = gen_();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double RandomStream::NextExponential(double rate) {
  assert(rate > 0.0);
  // -log(1-U) avoids log(0) since NextUniform() < 1.
  return -std::log1p(-NextUniform()) / rate;
}

double RandomStream::NextNormal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on (0,1] uniforms.
  double u1 = 1.0 - NextUniform();
  double u2 = NextUniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double RandomStream::NextNormal(double mean, double sigma) {
  assert(sigma >= 0.0);
  return mean + sigma * NextNormal();
}

std::uint64_t RandomStream::NextPoisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // traffic-batching use cases that reach this branch.
    double draw = NextNormal(lambda, std::sqrt(lambda)) + 0.5;
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
  }
  const double limit = std::exp(-lambda);
  std::uint64_t count = 0;
  double product = NextUniform();
  while (product > limit) {
    ++count;
    product *= NextUniform();
  }
  return count;
}

bool RandomStream::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextUniform() < p;
}

double RandomStream::NextPareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  return xm / std::pow(1.0 - NextUniform(), 1.0 / alpha);
}

}  // namespace analognf
