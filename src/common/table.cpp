#include "analognf/common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace analognf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row arity does not match header");
  }
  rows_.push_back(std::move(row));
}

void Table::AddNumericRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatSig(v, precision));
  AddRow(std::move(row));
}

void Table::Print(std::ostream& os, const std::string& prefix) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << prefix;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule.push_back(std::string(widths[c], '-'));
  }
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const bool needs_quote =
          cell.find_first_of(",\"\n") != std::string::npos;
      if (needs_quote) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string FormatSig(double value, int significant_digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", significant_digits, value);
  return buf;
}

namespace {

struct Scale {
  double factor;
  const char* suffix;
};

// Picks the largest scale whose mantissa stays at or above
// `min_mantissa`. Energy uses min_mantissa = 0.01 so the paper's idiom
// ("0.01 fJ", "0.16 nJ") comes out verbatim; durations use 1.0 ("20 ms").
std::string FormatScaled(double value, int sig, const Scale* scales,
                         std::size_t n, double min_mantissa) {
  const double mag = std::fabs(value);
  std::size_t pick = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mag / scales[i].factor >= min_mantissa) pick = i;
  }
  return FormatSig(value / scales[pick].factor, sig) + " " +
         scales[pick].suffix;
}

}  // namespace

std::string FormatEnergy(double joules, int significant_digits) {
  static constexpr Scale kScales[] = {
      {1e-15, "fJ"}, {1e-12, "pJ"}, {1e-9, "nJ"}, {1e-6, "uJ"}, {1.0, "J"},
  };
  return FormatScaled(joules, significant_digits, kScales,
                      std::size(kScales), 0.01);
}

std::string FormatDuration(double seconds, int significant_digits) {
  static constexpr Scale kScales[] = {
      {1e-9, "ns"}, {1e-6, "us"}, {1e-3, "ms"}, {1.0, "s"},
  };
  return FormatScaled(seconds, significant_digits, kScales,
                      std::size(kScales), 1.0);
}

}  // namespace analognf
