#include "analognf/common/thread_pool.hpp"

namespace analognf {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] {
      current_slot_ = i + 1;
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(std::size_t tasks,
                             const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    total_ = tasks;
    next_.store(0, std::memory_order_relaxed);
    done_ = 0;
  }
  cv_work_.notify_all();
  RunTasks();  // the caller works too
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return done_ == total_; });
  job_ = nullptr;
}

void ThreadPool::RunTasks() {
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total_) return;
    (*job_)(i);
    std::lock_guard<std::mutex> lock(mutex_);
    if (++done_ == total_) cv_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [this] {
        return stop_ || (job_ != nullptr &&
                         next_.load(std::memory_order_relaxed) < total_);
      });
      if (stop_) return;
    }
    RunTasks();
  }
}

std::size_t ThreadPool::RegisterExternalSlot() {
  if (current_slot_ != 0) return current_slot_;  // worker or already done
  const std::size_t index =
      external_slots_.fetch_add(1, std::memory_order_relaxed);
  current_slot_ = Shared().size() + 1 + index;
  return current_slot_;
}

std::size_t ThreadPool::SlotUpperBound() {
  return Shared().size() + 1 +
         external_slots_.load(std::memory_order_relaxed);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    const unsigned cores = std::thread::hardware_concurrency();
    return cores > 1 ? static_cast<std::size_t>(cores - 1) : std::size_t{0};
  }());
  return pool;
}

}  // namespace analognf
