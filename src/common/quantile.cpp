#include "analognf/common/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace analognf {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0) || !(q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
  }
  desired_increment_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) {
        positions_[static_cast<std::size_t>(i)] = i + 1;
      }
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
    }
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[static_cast<std::size_t>(k + 1)]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) {
    positions_[static_cast<std::size_t>(i)] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[static_cast<std::size_t>(i)] +=
        desired_increment_[static_cast<std::size_t>(i)];
  }

  // Adjust the three interior markers.
  for (int i = 1; i <= 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double diff = desired_[idx] - positions_[idx];
    const double ahead = positions_[idx + 1] - positions_[idx];
    const double behind = positions_[idx - 1] - positions_[idx];
    if ((diff >= 1.0 && ahead > 1.0) || (diff <= -1.0 && behind < -1.0)) {
      const double d = diff >= 1.0 ? 1.0 : -1.0;
      double candidate = Parabolic(i, d);
      if (heights_[idx - 1] < candidate && candidate < heights_[idx + 1]) {
        heights_[idx] = candidate;
      } else {
        heights_[idx] = Linear(i, d);
      }
      positions_[idx] += d;
    }
  }
  ++count_;
}

double P2Quantile::Parabolic(int i, double d) const {
  const auto idx = static_cast<std::size_t>(i);
  const double qp = heights_[idx + 1];
  const double qc = heights_[idx];
  const double qm = heights_[idx - 1];
  const double np = positions_[idx + 1];
  const double nc = positions_[idx];
  const double nm = positions_[idx - 1];
  return qc + d / (np - nm) *
                  ((nc - nm + d) * (qp - qc) / (np - nc) +
                   (np - nc - d) * (qc - qm) / (nc - nm));
}

double P2Quantile::Linear(int i, double d) const {
  const auto idx = static_cast<std::size_t>(i);
  const auto j = static_cast<std::size_t>(i + static_cast<int>(d));
  return heights_[idx] + d * (heights_[j] - heights_[idx]) /
                             (positions_[j] - positions_[idx]);
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile from the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, static_cast<std::size_t>(count_ - 1));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

void P2Quantile::Reset() {
  count_ = 0;
  heights_ = {};
  positions_ = {};
  desired_ = {};
}

}  // namespace analognf
